"""One-sided communication (RMA): MPI windows.

The mpi4py curriculum the assignments draw on ends with one-sided
communication — ``Win.Allocate`` / ``Put`` / ``Get`` / ``Accumulate``
with lock/unlock or fence synchronization. :class:`Window` reproduces
that model: every rank exposes a numpy buffer; any rank may read, write,
or accumulate into any other rank's buffer without the target calling
receive.

Synchronization follows MPI's rules, enforced rather than assumed:

- *passive target*: ``with win.locked(target): win.put(...)`` — the
  per-target lock serializes epochs;
- *active target*: ``win.fence()`` — a barrier separating epochs.

Accesses outside any epoch raise, which converts the classic silent
RMA race into an immediate error.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.mpi.comm import Communicator
from repro.mpi.ops import SUM
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["Window"]


class _WindowState:
    """Shared (world-level) state of one window: buffers and locks."""

    def __init__(self, size: int) -> None:
        self.buffers: list[np.ndarray | None] = [None] * size
        self.locks = [threading.RLock() for _ in range(size)]


class Window:
    """A collectively-created set of remotely-accessible buffers."""

    def __init__(self, comm: Communicator, local_size: int, dtype=float) -> None:
        """Collective constructor: every rank of ``comm`` must call it.

        ``local_size`` may differ per rank (0 = expose nothing, like
        ``win_size = 0`` on non-root ranks in the mpi4py tutorial).
        """
        require_nonnegative_int("local_size", local_size)
        self.comm = comm
        self._local = np.zeros(local_size, dtype=dtype)
        # Rank 0 builds the shared state object; since ranks are threads,
        # bcast of a *registry key* plus world-level storage shares it
        # without pickling (pickling would copy the buffers).
        world = comm._world  # noqa: SLF001 - substrate-internal wiring
        if comm.rank == 0:
            state = _WindowState(comm.size)
            key = world.register_shared(state)
        else:
            key = None
        key = comm.bcast(key, root=0)
        self._state: _WindowState = world.shared(key)
        self._state.buffers[comm.rank] = self._local
        self._epoch_targets: set[int] | None = None
        comm.barrier()  # window is usable only once everyone attached

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def fence(self) -> None:
        """Active-target epoch boundary: a barrier opening global access.

        Between two fences every rank may access every target (MPI's
        fence epochs); the implementation grabs no locks — accumulates
        still serialize internally per target.
        """
        self.comm.barrier()
        self._epoch_targets = set(range(self.comm.size))

    def locked(self, target: int):
        """Passive-target epoch: ``with win.locked(t): …`` (MPI lock/unlock)."""
        if not 0 <= target < self.comm.size:
            raise ValueError(f"target {target} out of range")
        window = self

        class _Epoch:
            def __enter__(self) -> "Window":
                window._state.locks[target].acquire()
                if window._epoch_targets is None:
                    window._epoch_targets = set()
                window._epoch_targets.add(target)
                return window

            def __exit__(self, *exc: Any) -> None:
                window._epoch_targets.discard(target)
                if not window._epoch_targets:
                    window._epoch_targets = None
                window._state.locks[target].release()

        return _Epoch()

    def _check_epoch(self, target: int) -> None:
        if self._epoch_targets is None or target not in self._epoch_targets:
            raise RuntimeError(
                f"RMA access to rank {target} outside any epoch — "
                "wrap it in win.locked(target) or call win.fence() first"
            )

    def _target_buffer(self, target: int) -> np.ndarray:
        if not 0 <= target < self.comm.size:
            raise ValueError(f"target {target} out of range")
        buf = self._state.buffers[target]
        if buf is None or buf.size == 0:
            raise ValueError(f"rank {target} exposes no window memory")
        return buf

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def local(self) -> np.ndarray:
        """This rank's exposed buffer (direct, always-legal local access)."""
        return self._local

    def put(self, values: np.ndarray, target: int, offset: int = 0) -> None:
        """Write ``values`` into the target's buffer at ``offset``."""
        self._check_epoch(target)
        values = np.asarray(values)
        buf = self._target_buffer(target)
        if offset < 0 or offset + values.size > buf.size:
            raise IndexError(
                f"put of {values.size} at offset {offset} exceeds window of {buf.size}"
            )
        buf[offset : offset + values.size] = values

    def get(self, target: int, offset: int = 0, count: int | None = None) -> np.ndarray:
        """Copy ``count`` elements from the target's buffer at ``offset``."""
        self._check_epoch(target)
        buf = self._target_buffer(target)
        count = buf.size - offset if count is None else count
        require_nonnegative_int("count", count)
        if offset < 0 or offset + count > buf.size:
            raise IndexError(
                f"get of {count} at offset {offset} exceeds window of {buf.size}"
            )
        return buf[offset : offset + count].copy()

    def accumulate(
        self,
        values: np.ndarray,
        target: int,
        offset: int = 0,
        op: Callable[[Any, Any], Any] = SUM,
    ) -> None:
        """Atomically fold ``values`` into the target (MPI_Accumulate).

        Unlike put/get, accumulate is atomically serialized per
        target even inside fence epochs, matching MPI's guarantee that
        concurrent accumulates with the same op are well-defined.
        """
        values = np.asarray(values)
        self._check_epoch(target)
        buf = self._target_buffer(target)
        if offset < 0 or offset + values.size > buf.size:
            raise IndexError(
                f"accumulate of {values.size} at offset {offset} exceeds window of {buf.size}"
            )
        with self._state.locks[target]:
            buf[offset : offset + values.size] = op(
                buf[offset : offset + values.size], values
            )
