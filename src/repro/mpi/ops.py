"""Built-in reduction operators for :meth:`Communicator.reduce` and friends.

Each op is a binary callable combining two payloads. They work on
scalars and elementwise on numpy arrays (because the underlying Python
operators broadcast), matching the behaviour of the MPI predefined ops
the k-means assignment's "distributed reduction" step relies on
(paper §3).

Reductions in this runtime are always folded **in rank order**
(``((r0 ⊕ r1) ⊕ r2) ⊕ …``), so results are deterministic run-to-run even
for non-associative floating-point addition — a stronger guarantee than
real MPI makes, and convenient for the reproducibility-focused tests.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR", "Op"]

#: Type alias for reduction operators.
Op = Callable[[Any, Any], Any]


def SUM(a: Any, b: Any) -> Any:
    """Elementwise / scalar addition."""
    return a + b


def PROD(a: Any, b: Any) -> Any:
    """Elementwise / scalar product."""
    return a * b


def MAX(a: Any, b: Any) -> Any:
    """Elementwise maximum for arrays, ``max`` for scalars."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def MIN(a: Any, b: Any) -> Any:
    """Elementwise minimum for arrays, ``min`` for scalars."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def LAND(a: Any, b: Any) -> Any:
    """Logical and."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def LOR(a: Any, b: Any) -> Any:
    """Logical or."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def BAND(a: Any, b: Any) -> Any:
    """Bitwise and."""
    return a & b


def BOR(a: Any, b: Any) -> Any:
    """Bitwise or."""
    return a | b
