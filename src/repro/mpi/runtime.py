"""The SPMD world: rank threads, mailboxes, and the launcher.

:func:`run_spmd` is the moral equivalent of ``mpiexec -n <size>``: it
starts one thread per rank, hands each a :class:`Communicator`, runs the
user's rank function, and collects per-rank results. If any rank raises,
the world aborts (waking ranks blocked in ``recv``/collectives) and a
:class:`RankFailedError` reports every failure.

Python threads as ranks is a faithful *semantic* model — value-copying
messages, real concurrency hazards, real blocking — and a partially
faithful *performance* model: numpy kernels release the GIL so chunked
array compute genuinely overlaps, while pure-Python loops serialize.
DESIGN.md's ablation benchmark quantifies exactly that boundary.

Fault tolerance (docs/fault_tolerance.md): pass a seeded
:class:`~repro.mpi.faults.FaultPlan` to inject deterministic crashes,
message faults, and stragglers, and pick an ``on_failure`` policy —
``"abort"`` (fail fast, the default), ``"respawn"`` (re-run the dead
rank's function with bounded exponential-backoff retries), or
``"tolerate"`` (ULFM-style: the world keeps running, survivors observe
the death via ``Communicator.failed_ranks``/``shrink``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.mpi.comm import Communicator, _Mailbox
from repro.mpi.errors import DeadlockError, RankFailedError, SpmdAbort
from repro.mpi.faults import FaultPlan, FaultReport, _FaultInjector
from repro.trace.tracer import Tracer, get_tracer
from repro.util.backoff import BackoffPolicy
from repro.util.validation import require_positive_int

__all__ = ["World", "run_spmd", "FAILURE_POLICIES"]

_WORLD_COMM_ID = 0

#: Recovery policies accepted by :func:`run_spmd`'s ``on_failure``.
FAILURE_POLICIES = ("abort", "respawn", "tolerate")


class MessageStats:
    """Communication counters for one SPMD run.

    Like the shuffle-pair counts in MapReduce/Spark and the remote-access
    counters in the Chapel arrays, these make the runtime's traffic
    observable: ``messages`` posts and their pickled ``payload_bytes``,
    in aggregate (:meth:`snapshot`, unchanged shape for existing
    callers) and broken down per sending rank (:meth:`per_rank`) and per
    (src, dst) pair (:meth:`per_pair`) — the communication *matrix* that
    shows who talks to whom. Thread-safe via a single lock (contention
    is irrelevant at teaching scale).
    """

    def __init__(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self._by_pair: dict[tuple[int, int], list[int]] = {}
        self._lock = threading.Lock()

    def record(self, nbytes: int, *, src: int | None = None, dst: int | None = None) -> None:
        """Count one posted message of ``nbytes`` pickled payload.

        ``src``/``dst`` are world ranks; when both are given the message
        also lands in the per-rank and per-pair breakdowns.
        """
        with self._lock:
            self.messages += 1
            self.payload_bytes += nbytes
            if src is not None and dst is not None:
                cell = self._by_pair.setdefault((src, dst), [0, 0])
                cell[0] += 1
                cell[1] += nbytes

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (for reports)."""
        with self._lock:
            return {"messages": self.messages, "payload_bytes": self.payload_bytes}

    def per_rank(self) -> dict[int, dict[str, int]]:
        """Messages/bytes *sent* by each world rank, sorted by rank."""
        with self._lock:
            out: dict[int, dict[str, int]] = {}
            for (src, _dst), (n, b) in sorted(self._by_pair.items()):
                cell = out.setdefault(src, {"messages": 0, "payload_bytes": 0})
                cell["messages"] += n
                cell["payload_bytes"] += b
            return out

    def per_pair(self) -> dict[tuple[int, int], dict[str, int]]:
        """Messages/bytes per (src, dst) world-rank pair, sorted."""
        with self._lock:
            return {
                pair: {"messages": n, "payload_bytes": b}
                for pair, (n, b) in sorted(self._by_pair.items())
            }


class World:
    """Shared state for one SPMD execution: mailboxes, abort flag, comm ids."""

    def __init__(
        self,
        size: int,
        timeout: float,
        faults: FaultPlan | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        require_positive_int("size", size)
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.size = size
        self.timeout = timeout
        self.stats = MessageStats()
        self.report = FaultReport(size)
        #: The run's tracer — the process default (disabled) unless one
        #: was passed explicitly. Bound once at construction.
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Fault injector consulted on every runtime operation, or None —
        #: the fault-free hot path is a single ``is None`` check.
        self.faults = (
            _FaultInjector(faults, size, self.report, tracer=self.tracer)
            if faults is not None
            else None
        )
        self._mailboxes = [_Mailbox(self, r) for r in range(size)]
        self._abort = threading.Event()
        self._comm_id_lock = threading.Lock()
        self._next_comm_id = _WORLD_COMM_ID + 1
        self._shared: dict[int, object] = {}
        self._shared_lock = threading.Lock()
        self._next_shared_key = 0
        self._dead: dict[int, BaseException] = {}
        self._dead_lock = threading.Lock()
        self._shrink_ids: dict[tuple[int, frozenset[int]], int] = {}

    @property
    def aborted(self) -> bool:
        """True once any rank has failed or called abort()."""
        return self._abort.is_set()

    def abort(self) -> None:
        """Mark the world dead and wake every blocked receiver."""
        self._abort.set()
        for box in self._mailboxes:
            box.wake_all()

    def mark_dead(self, world_rank: int, exc: BaseException) -> None:
        """Record an unrecovered rank death (``on_failure="tolerate"``).

        The world keeps running; blocked receivers are woken so tolerant
        operations can notice the death instead of waiting out the
        timeout.
        """
        with self._dead_lock:
            self._dead[world_rank] = exc
        self.report.record_death(world_rank, exc)
        self.tracer.instant(
            "rank_death",
            category="runtime.fault",
            scope=f"rank{world_rank}",
            rank=world_rank,
            error=type(exc).__name__,
        )
        for box in self._mailboxes:
            box.wake_all()

    def is_dead(self, world_rank: int) -> bool:
        """True if the rank died and was not (or could not be) respawned."""
        with self._dead_lock:
            return world_rank in self._dead

    def dead_world_ranks(self) -> frozenset[int]:
        """The currently-known dead world ranks."""
        with self._dead_lock:
            return frozenset(self._dead)

    def mailbox(self, world_rank: int) -> _Mailbox:
        """The receive queue of a world rank."""
        return self._mailboxes[world_rank]

    def register_shared(self, obj: object) -> int:
        """Store an object shared by reference across ranks; returns its key.

        Messages are pickled (value semantics), so substrate features
        that genuinely need shared state — RMA window buffers — register
        it here and ship only the key.
        """
        with self._shared_lock:
            key = self._next_shared_key
            self._next_shared_key += 1
            self._shared[key] = obj
            return key

    def shared(self, key: int) -> object:
        """Look up an object registered with :meth:`register_shared`."""
        with self._shared_lock:
            return self._shared[key]

    def allocate_comm_id(self) -> int:
        """Fresh communicator id (used by split/dup)."""
        with self._comm_id_lock:
            cid = self._next_comm_id
            self._next_comm_id += 1
            return cid

    def shrink_comm_id(self, parent_id: int, failed_world: frozenset[int]) -> int:
        """The communicator id all survivors of one shrink agree on.

        ``shrink`` involves no messaging, so agreement comes from this
        shared, lock-protected cache: the first survivor to ask allocates
        the id, the rest reuse it.
        """
        key = (parent_id, failed_world)
        with self._comm_id_lock:
            if key not in self._shrink_ids:
                self._shrink_ids[key] = self._next_comm_id
                self._next_comm_id += 1
            return self._shrink_ids[key]

    def world_communicator(self, rank: int) -> Communicator:
        """The COMM_WORLD view for one rank."""
        return Communicator(self, _WORLD_COMM_ID, list(range(self.size)), rank)


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
    return_stats: bool = False,
    faults: FaultPlan | None = None,
    on_failure: str = "abort",
    max_respawns: int = 2,
    respawn_backoff: float = 0.01,
    wall_timeout: float | None = None,
    return_report: bool = False,
    tracer: Tracer | None = None,
    **kwargs: Any,
) -> Any:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return per-rank results.

    Parameters
    ----------
    size:
        Number of ranks (threads) to launch.
    fn:
        The rank program. Its first argument is this rank's
        :class:`Communicator`; remaining arguments are shared verbatim
        (so treat them as read-only, exactly like pre-loaded input files
        in a real MPI job).
    timeout:
        Seconds any single blocking operation may wait before the runtime
        declares deadlock.
    return_stats:
        When True, the run's message-count/payload-bytes stats are
        appended to the return value.
    faults:
        Optional :class:`~repro.mpi.faults.FaultPlan` to inject
        deterministic crashes, message faults, and stragglers. None (the
        default) leaves the hot path untouched.
    on_failure:
        Recovery policy for a rank whose function raises an
        ``Exception`` (``BaseException`` escapes always abort):

        - ``"abort"``: fail fast — abort the world, raise
          :class:`RankFailedError` (the pre-fault-tolerance behaviour);
        - ``"respawn"``: re-run the rank function from the top, up to
          ``max_respawns`` times with exponential backoff
          (``respawn_backoff * 2**attempt`` seconds, the shared
          :class:`~repro.util.backoff.BackoffPolicy` schedule);
          exhausted retries
          escalate to abort. The function must be re-entrant — see
          docs/fault_tolerance.md.
        - ``"tolerate"``: ULFM-style — record the death, keep the world
          running; survivors observe it via
          ``Communicator.failed_ranks()`` / ``is_alive()`` and rebuild
          with ``shrink()``. The dead rank's result stays None. Raises
          :class:`RankFailedError` only if *every* rank died.
    wall_timeout:
        Optional bound on the whole run's wall-clock seconds. If any
        rank thread is still running at the deadline the world is
        aborted and :class:`DeadlockError` is raised naming the stuck
        ranks — instead of joining forever.
    return_report:
        When True, the :class:`~repro.mpi.faults.FaultReport` (fired
        faults, deaths, respawns) is appended to the return value.
    tracer:
        Optional :class:`~repro.trace.Tracer` observing this run. None
        (the default) uses the process tracer from
        :func:`repro.trace.get_tracer` — a disabled no-op unless
        installed with ``use_tracer``/``set_tracer``. When enabled, the
        runtime records per-rank lifecycle spans, every message post,
        receive/collective spans, and fault events, each stamped with a
        deterministic per-rank logical clock (docs/observability.md).

    Returns
    -------
    ``results`` — or ``(results, stats)``, ``(results, report)``,
    ``(results, stats, report)`` as requested by the two flags.

    Raises
    ------
    RankFailedError
        If any rank raised (policy permitting); carries the per-rank
        exceptions.
    DeadlockError
        If ``wall_timeout`` expired with rank threads still running.
    """
    if on_failure not in FAILURE_POLICIES:
        raise ValueError(f"on_failure must be one of {FAILURE_POLICIES}, got {on_failure!r}")
    if wall_timeout is not None and wall_timeout <= 0:
        raise ValueError(f"wall_timeout must be > 0, got {wall_timeout}")
    world = World(size, timeout, faults=faults, tracer=tracer)
    run_tracer = world.tracer
    respawn_policy = BackoffPolicy(respawn_backoff)
    results: list[Any] = [None] * size
    failures: dict[int, BaseException] = {}
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        attempts = 0
        with run_tracer.scope(f"rank{rank}"):
            while True:
                comm = world.world_communicator(rank)
                try:
                    with run_tracer.span("rank", category="runtime", rank=rank, attempt=attempts):
                        results[rank] = fn(comm, *args, **kwargs)
                    return
                except SpmdAbort:
                    # Another rank failed first; this rank just unwinds quietly.
                    return
                except Exception as exc:
                    if on_failure == "respawn" and attempts < max_respawns and not world.aborted:
                        world.report.record_respawn(rank)
                        run_tracer.instant(
                            "rank_respawn", category="runtime.fault", rank=rank, attempt=attempts
                        )
                        respawn_policy.sleep(attempts)
                        attempts += 1
                        continue
                    if on_failure == "tolerate":
                        world.mark_dead(rank, exc)
                        return
                    run_tracer.instant(
                        "rank_failed", category="runtime.fault", rank=rank,
                        error=type(exc).__name__,
                    )
                    with failure_lock:
                        failures[rank] = exc
                    world.abort()
                    return
                except BaseException as exc:  # noqa: BLE001 - report any rank failure
                    with failure_lock:
                        failures[rank] = exc
                    world.abort()
                    return

    threads = [
        threading.Thread(target=rank_main, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    with run_tracer.span("run_spmd", category="runtime", size=size):
        for t in threads:
            t.start()
        deadline = None if wall_timeout is None else time.monotonic() + wall_timeout
        for t in threads:
            t.join(None if deadline is None else max(0.0, deadline - time.monotonic()))
    stuck = [r for r, t in enumerate(threads) if t.is_alive()]
    if stuck:
        # Wake anything blocked in the runtime; give the unwind a moment.
        world.abort()
        grace = time.monotonic() + 1.0
        for t in threads:
            t.join(max(0.0, grace - time.monotonic()))
        still = [r for r, t in enumerate(threads) if t.is_alive()]
        raise DeadlockError(
            f"run_spmd exceeded wall_timeout={wall_timeout}s: "
            f"rank(s) {stuck} never returned"
            + (f"; rank(s) {still} ignored the abort (stuck outside the runtime)" if still else "")
        )

    if on_failure == "tolerate":
        # Tolerated deaths live in the report; raise only for hard aborts
        # (BaseException escapes) or a world with no survivors left.
        all_dead = dict(world.report.failures)
        if failures or len(all_dead) >= size:
            failures = {**all_dead, **failures}
            first_rank = min(failures)
            raise RankFailedError(failures) from failures[first_rank]
    elif failures:
        first_rank = min(failures)
        raise RankFailedError(failures) from failures[first_rank]
    out: tuple[Any, ...] = (results,)
    if return_stats:
        out += (world.stats.snapshot(),)
    if return_report:
        out += (world.report,)
    return out[0] if len(out) == 1 else out
