"""The SPMD world: rank threads, mailboxes, and the launcher.

:func:`run_spmd` is the moral equivalent of ``mpiexec -n <size>``: it
starts one thread per rank, hands each a :class:`Communicator`, runs the
user's rank function, and collects per-rank results. If any rank raises,
the world aborts (waking ranks blocked in ``recv``/collectives) and a
:class:`RankFailedError` reports every failure.

Python threads as ranks is a faithful *semantic* model — value-copying
messages, real concurrency hazards, real blocking — and a partially
faithful *performance* model: numpy kernels release the GIL so chunked
array compute genuinely overlaps, while pure-Python loops serialize.
DESIGN.md's ablation benchmark quantifies exactly that boundary.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.mpi.comm import Communicator, _Mailbox
from repro.mpi.errors import RankFailedError, SpmdAbort
from repro.util.validation import require_positive_int

__all__ = ["World", "run_spmd"]

_WORLD_COMM_ID = 0


class MessageStats:
    """Communication counters for one SPMD run (all ranks combined).

    Like the shuffle-pair counts in MapReduce/Spark and the remote-access
    counters in the Chapel arrays, these make the runtime's traffic
    observable: ``messages`` posts and their pickled ``payload_bytes``.
    Thread-safe via a single lock (contention is irrelevant at teaching
    scale).
    """

    def __init__(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self._lock = threading.Lock()

    def record(self, nbytes: int) -> None:
        """Count one posted message of ``nbytes`` pickled payload."""
        with self._lock:
            self.messages += 1
            self.payload_bytes += nbytes

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (for reports)."""
        with self._lock:
            return {"messages": self.messages, "payload_bytes": self.payload_bytes}


class World:
    """Shared state for one SPMD execution: mailboxes, abort flag, comm ids."""

    def __init__(self, size: int, timeout: float) -> None:
        require_positive_int("size", size)
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.size = size
        self.timeout = timeout
        self.stats = MessageStats()
        self._mailboxes = [_Mailbox(self) for _ in range(size)]
        self._abort = threading.Event()
        self._comm_id_lock = threading.Lock()
        self._next_comm_id = _WORLD_COMM_ID + 1
        self._shared: dict[int, object] = {}
        self._shared_lock = threading.Lock()
        self._next_shared_key = 0

    @property
    def aborted(self) -> bool:
        """True once any rank has failed or called abort()."""
        return self._abort.is_set()

    def abort(self) -> None:
        """Mark the world dead and wake every blocked receiver."""
        self._abort.set()
        for box in self._mailboxes:
            box.wake_all()

    def mailbox(self, world_rank: int) -> _Mailbox:
        """The receive queue of a world rank."""
        return self._mailboxes[world_rank]

    def register_shared(self, obj: object) -> int:
        """Store an object shared by reference across ranks; returns its key.

        Messages are pickled (value semantics), so substrate features
        that genuinely need shared state — RMA window buffers — register
        it here and ship only the key.
        """
        with self._shared_lock:
            key = self._next_shared_key
            self._next_shared_key += 1
            self._shared[key] = obj
            return key

    def shared(self, key: int) -> object:
        """Look up an object registered with :meth:`register_shared`."""
        with self._shared_lock:
            return self._shared[key]

    def allocate_comm_id(self) -> int:
        """Fresh communicator id (used by split/dup)."""
        with self._comm_id_lock:
            cid = self._next_comm_id
            self._next_comm_id += 1
            return cid

    def world_communicator(self, rank: int) -> Communicator:
        """The COMM_WORLD view for one rank."""
        return Communicator(self, _WORLD_COMM_ID, list(range(self.size)), rank)


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 60.0,
    return_stats: bool = False,
    **kwargs: Any,
) -> list[Any] | tuple[list[Any], dict[str, int]]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return per-rank results.

    Parameters
    ----------
    size:
        Number of ranks (threads) to launch.
    fn:
        The rank program. Its first argument is this rank's
        :class:`Communicator`; remaining arguments are shared verbatim
        (so treat them as read-only, exactly like pre-loaded input files
        in a real MPI job).
    timeout:
        Seconds any single blocking operation may wait before the runtime
        declares deadlock.
    return_stats:
        When True, return ``(results, stats)`` where stats reports the
        run's total message count and pickled payload bytes — the
        communication-volume view the course's performance discussions
        need.

    Raises
    ------
    RankFailedError
        If any rank raised; carries the per-rank exceptions.
    """
    world = World(size, timeout)
    results: list[Any] = [None] * size
    failures: dict[int, BaseException] = {}
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        comm = world.world_communicator(rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except SpmdAbort:
            # Another rank failed first; this rank just unwinds quietly.
            pass
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with failure_lock:
                failures[rank] = exc
            world.abort()

    threads = [
        threading.Thread(target=rank_main, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        first_rank = min(failures)
        raise RankFailedError(failures) from failures[first_rank]
    if return_stats:
        return results, world.stats.snapshot()
    return results
