"""Cartesian process topologies (MPI_Cart_create and friends).

Stencil codes — the heat equation's MPI adaptation, the traffic model's
ring — name their neighbours through a Cartesian view of the rank
space. :class:`CartComm` provides the standard operations: rank ↔
coordinate conversion, ``shift`` (source/destination for a displacement
along a dimension, honouring periodicity), and neighbour ``sendrecv``
sugar for halo exchanges.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.mpi.comm import Communicator
from repro.util.validation import require_positive_int

__all__ = ["CartComm", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced dimension sizes whose product is ``nnodes`` (MPI_Dims_create).

    Greedy: repeatedly assign the largest remaining prime factor to the
    currently smallest dimension, then sort descending — close to MPI's
    behaviour and adequate for teaching-scale grids.
    """
    require_positive_int("nnodes", nnodes)
    require_positive_int("ndims", ndims)
    dims = [1] * ndims
    remaining = nnodes
    factor = 2
    factors: list[int] = []
    while factor * factor <= remaining:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        factors.append(remaining)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return sorted(dims, reverse=True)


class CartComm:
    """A communicator with an attached Cartesian coordinate system.

    Ranks are laid out row-major over ``dims`` (the MPI convention).
    Construction is collective in spirit but stateless in practice —
    every rank just computes the same arithmetic.
    """

    def __init__(self, comm: Communicator, dims: Sequence[int], periods: Sequence[bool]) -> None:
        dims = [require_positive_int("dim", d) for d in dims]
        if len(periods) != len(dims):
            raise ValueError("periods must match dims in length")
        if math.prod(dims) != comm.size:
            raise ValueError(
                f"dims {dims} cover {math.prod(dims)} ranks but communicator has {comm.size}"
            )
        self.comm = comm
        self.dims = list(dims)
        self.periods = [bool(p) for p in periods]

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank."""
        return self.comm.rank

    @property
    def ndims(self) -> int:
        """Number of grid dimensions."""
        return len(self.dims)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a rank (row-major)."""
        if not 0 <= rank < self.comm.size:
            raise ValueError(f"rank {rank} out of range")
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at the given grid coordinates (wrapping periodic dims)."""
        if len(coords) != self.ndims:
            raise ValueError(f"need {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise ValueError(f"coordinate {c} outside non-periodic extent {extent}")
            rank = rank * extent + c
        return rank

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's grid coordinates."""
        return self.coords_of(self.rank)

    # ------------------------------------------------------------------
    def shift(self, dimension: int, displacement: int) -> tuple[int | None, int | None]:
        """(source, destination) ranks for a shift along ``dimension``.

        Matches ``MPI_Cart_shift``: ``destination`` is where this rank's
        data goes for a positive displacement; ``source`` is who sends to
        this rank. Off-grid neighbours of non-periodic dimensions are
        ``None`` (MPI_PROC_NULL).
        """
        if not 0 <= dimension < self.ndims:
            raise ValueError(f"dimension {dimension} out of range")
        here = list(self.coords)

        def neighbour(offset: int) -> int | None:
            target = here.copy()
            target[dimension] += offset
            extent = self.dims[dimension]
            if self.periods[dimension]:
                target[dimension] %= extent
            elif not 0 <= target[dimension] < extent:
                return None
            return self.rank_of(target)

        return neighbour(-displacement), neighbour(displacement)

    def neighbor_sendrecv(
        self, sendobj: Any, dimension: int, displacement: int, tag: int = 0
    ) -> Any:
        """Halo-exchange sugar: send toward +displacement, receive from
        the opposite side. Returns the received object, or None at a
        non-periodic boundary with no source."""
        source, dest = self.shift(dimension, displacement)
        if dest is not None:
            self.comm.send(sendobj, dest, tag)
        if source is not None:
            return self.comm.recv(source, tag)
        return None
