"""An in-process SPMD message-passing runtime with MPI semantics.

Every distributed assignment in the paper targets MPI (kNN over
MapReduce-MPI, §2; k-means, §3; the traffic and heat variations, §5–6;
MPI4Py task distribution, §7). No MPI launcher exists in this offline
environment, so this package provides the substitute described in
DESIGN.md: each rank runs as a thread inside one Python process, and a
:class:`Communicator` offers the familiar API surface —

- point-to-point: ``send`` / ``recv`` / ``sendrecv`` / ``isend`` /
  ``irecv`` / ``probe`` / ``iprobe`` with tag and source matching
  (``ANY_SOURCE`` / ``ANY_TAG`` wildcards),
- collectives: ``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``alltoall``, ``reduce``, ``allreduce``, ``scan``,
  ``exscan``,
- communicator management: ``split`` (color/key sub-communicators) and
  ``dup``.

Semantics follow mpi4py's lowercase (pickle-based) methods: every
payload is serialized on send and deserialized on receive, so ranks
never share mutable state through a message — the same value semantics
a real distributed run would have, which surfaces aliasing bugs that a
naive queue-of-references simulator would hide.

Entry point: :func:`run_spmd` launches ``fn(comm, *args)`` on every rank
and returns the per-rank results.

The runtime also supports deterministic fault injection and ULFM-style
recovery (docs/fault_tolerance.md): a seeded :class:`FaultPlan` kills
ranks, drops/delays/duplicates messages, and adds stragglers
bit-reproducibly; ``run_spmd``'s ``on_failure`` policy chooses between
fail-fast ``"abort"``, bounded-retry ``"respawn"``, and ``"tolerate"``,
under which survivors observe deaths (``Communicator.failed_ranks``,
``recv_tolerant``, ``gather_tolerant``) and rebuild with ``shrink``.
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator, Request, Status
from repro.mpi.errors import DeadlockError, InjectedCrash, RankFailedError, SpmdAbort
from repro.mpi.faults import FaultEvent, FaultPlan, FaultReport, InjectionRecord
from repro.mpi.ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM
from repro.mpi.rma import Window
from repro.mpi.runtime import FAILURE_POLICIES, run_spmd
from repro.mpi.topology import CartComm, dims_create

__all__ = [
    "run_spmd",
    "FAILURE_POLICIES",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "InjectionRecord",
    "InjectedCrash",
    "Communicator",
    "Request",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "SpmdAbort",
    "RankFailedError",
    "DeadlockError",
    "Window",
    "CartComm",
    "dims_create",
]
