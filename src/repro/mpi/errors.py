"""Error types raised by the SPMD runtime."""

from __future__ import annotations

__all__ = ["SpmdAbort", "RankFailedError", "DeadlockError", "InjectedCrash"]


class SpmdAbort(BaseException):
    """Raised inside surviving ranks when another rank has failed.

    Derived from ``BaseException`` so user-level ``except Exception``
    blocks inside rank functions do not accidentally swallow the abort
    and leave the world half-dead — the same reason real MPI kills the
    whole job on any rank's fatal error.
    """


class RankFailedError(RuntimeError):
    """Raised by :func:`repro.mpi.run_spmd` when one or more ranks raised.

    ``failures`` maps rank -> the exception that rank raised. The first
    failure (by rank order) is chained as ``__cause__`` so its traceback
    is visible.
    """

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"rank {rank}: {type(exc).__name__}: {exc}" for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed: {detail}")


class DeadlockError(RuntimeError):
    """A blocking operation exceeded the world's configured timeout.

    Real MPI would simply hang; the simulator turns the hang into a
    diagnosable error, which the assignments use to demonstrate deadlock
    (e.g. two ranks both blocking in ``recv`` before anyone sends). The
    message names the blocked operation and its peer rank so a hang
    caused by an injected fault (:mod:`repro.mpi.faults`) points at the
    dead partner, not just at the clock.
    """


class InjectedCrash(RuntimeError):
    """A rank death injected by a :class:`repro.mpi.faults.FaultPlan`.

    Distinct from organic failures so recovery policies (and tests) can
    tell a simulated fault apart from a genuine bug in the rank program.
    ``rank`` is the world rank that was killed and ``op_index`` the
    runtime-operation index at which the plan scheduled the crash.
    """

    def __init__(self, rank: int, op_index: int) -> None:
        self.rank = rank
        self.op_index = op_index
        super().__init__(f"injected crash of rank {rank} at operation {op_index}")
