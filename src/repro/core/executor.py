"""Pluggable executor backends: serial, thread, and process parallelism.

Every engine in the reproduction fans embarrassingly-parallel work over
local workers — Spark tasks over partitions, MapReduce map/reduce tasks
within a rank, the k-means assignment step over point chunks, HPO
trials over the grid. This module gives them one shared substrate with
three interchangeable backends:

- :class:`SerialExecutor` — a plain loop on the calling thread.
  Zero concurrency, zero overhead; the determinism baseline.
- :class:`ThreadExecutor` — a fresh ``ThreadPoolExecutor`` per map
  (fresh pools keep nested maps deadlock-free). Real concurrency for
  GIL-releasing kernels (numpy, IO); serialized for pure-Python loops.
- :class:`ProcessExecutor` — real CPU parallelism on ``multiprocessing``
  worker processes, with chunked task batching to amortize IPC.

The three backends are **result-identical by construction**: tasks are
pure functions of ``(index, item)``, results are merged in index order,
and per-task seeds come from :func:`derive_task_seed` — a pure function
of ``(base_seed, index)`` — so no backend can leak scheduling order
into the output. ``tests/core/test_executor_determinism.py`` sweeps
seeds over all three backends for k-means, MapReduce wordcount, and
accumulator-carrying Spark jobs to hold that line.

Process-backend ground rules (docs/executors.md has the full story):

- With the ``fork`` start method (the default where available, i.e.
  Linux), the task function and items are *inherited* by the forked
  workers — closures over arbitrary driver state work unmodified.
- With ``spawn``, the ``(fn, items)`` payload must pickle; closures
  that the stdlib pickler rejects fall back to :mod:`cloudpickle` when
  it is importable, and otherwise raise a clear error.
- Task *results* (and task exceptions) always travel back by pickle,
  under either start method — keep them plain data.
- A worker that dies without delivering its results (segfault,
  ``os._exit``, OOM kill) surfaces as :class:`WorkerCrashError`
  carrying the completed results and the missing task indices, so
  schedulers (e.g. the Spark context) can re-execute the lost tasks
  and record the crash in their fault reports.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.sanitizer.runtime import get_sanitizer
from repro.trace.tracer import get_tracer
from repro.util.partition import block_partition
from repro.util.validation import require_positive_int

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "derive_task_seed",
    "TaskFailedError",
    "WorkerCrashError",
]

#: The recognized backend names, in determinism-baseline-first order.
BACKENDS = ("serial", "thread", "process")

_MASK64 = (1 << 64) - 1


def derive_task_seed(base_seed: int, index: int) -> int:
    """A per-task seed that is a pure function of ``(base_seed, index)``.

    SplitMix64 finalizer over the combined words: well-mixed (adjacent
    indices give unrelated seeds), backend- and scheduling-independent,
    and identical on every platform — the shared-seed plumbing that
    keeps stochastic tasks bit-identical across ``serial``/``thread``/
    ``process`` backends.
    """
    x = ((base_seed & _MASK64) * 0x9E3779B97F4A7C15 + (index & _MASK64) + 1) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class TaskFailedError(RuntimeError):
    """A task raised in a worker and its exception could not be re-raised.

    Raised by :class:`ProcessExecutor` when the original exception does
    not survive the trip back through pickle; carries the failing task
    ``index`` and the worker-side ``traceback_text``. (When the original
    exception *does* unpickle, it is re-raised as-is, matching the
    serial and thread backends.)
    """

    def __init__(self, index: int, message: str, traceback_text: str = "") -> None:
        super().__init__(
            f"task {index} failed in worker: {message}"
            + (f"\n--- worker traceback ---\n{traceback_text}" if traceback_text else "")
        )
        self.index = index
        self.traceback_text = traceback_text


class WorkerCrashError(RuntimeError):
    """A worker process died without delivering all its task results.

    ``completed`` maps task index -> result for everything that made it
    back (from all workers); ``missing`` is the sorted tuple of indices
    whose results were lost. Schedulers catch this to re-execute the
    missing tasks and feed their fault-report paths.
    """

    def __init__(
        self,
        worker: int,
        exitcode: int | None,
        completed: dict[int, Any],
        missing: tuple[int, ...],
    ) -> None:
        super().__init__(
            f"worker {worker} crashed (exitcode={exitcode}) with "
            f"{len(missing)} task result(s) undelivered: {list(missing)[:8]}"
            + ("..." if len(missing) > 8 else "")
        )
        self.worker = worker
        self.exitcode = exitcode
        self.completed = completed
        self.missing = missing


class Executor(ABC):
    """Ordered map over independent tasks: ``fn(index, item)`` per item.

    Contract shared by all backends (what the determinism tests pin):

    - results are returned **in item order**, never completion order;
    - ``fn`` must be a pure function of its arguments (plus read-only
      shared state) — backends may run it anywhere, in any order;
    - a task exception propagates to the caller (lowest failing index
      wins when several fail);
    - :meth:`map_seeded` hands task ``i`` the seed
      ``derive_task_seed(base_seed, i)`` regardless of backend.

    Executors are context managers; only :class:`ProcessExecutor`-style
    backends with real resources do anything on close.
    """

    name: str = "abstract"

    def __init__(self, num_workers: int = 4) -> None:
        self.num_workers = require_positive_int("num_workers", num_workers)

    @abstractmethod
    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        """Run ``fn(i, items[i])`` for every i; results in index order."""

    def map_seeded(
        self, fn: Callable[[int, Any, int], Any], items: Sequence[Any], base_seed: int
    ) -> list[Any]:
        """:meth:`map` with a derived per-task seed as a third argument."""
        return self.map(lambda i, item: fn(i, item, derive_task_seed(base_seed, i)), items)

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class SerialExecutor(Executor):
    """The baseline: a plain loop on the calling thread."""

    name = "serial"

    def __init__(self, num_workers: int = 1) -> None:
        super().__init__(num_workers)

    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.serial",
            backend=self.name, tasks=len(items),
        ):
            return [fn(i, item) for i, item in enumerate(items)]


class ThreadExecutor(Executor):
    """Today's engine behaviour: a fresh thread pool per map call.

    A fresh pool keeps nested maps (a task that itself maps — e.g. a
    Spark shuffle materializing inside a job) deadlock-free, exactly
    like ``SparkContext``'s fresh pool per job. Exceptions re-raise the
    original exception object of the lowest failing index.
    """

    name = "thread"

    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        if not items:
            return []
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.thread",
            backend=self.name, tasks=len(items), workers=self.num_workers,
        ):
            sanitizer = get_sanitizer()
            if sanitizer is not None:
                return self._map_sanitized(fn, items, sanitizer)
            if len(items) == 1:
                return [fn(0, items[0])]
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                futures = [pool.submit(fn, i, item) for i, item in enumerate(items)]
                return [f.result() for f in futures]

    def _map_sanitized(
        self, fn: Callable[[int, Any], Any], items: Sequence[Any], sanitizer: Any
    ) -> list[Any]:
        """The instrumented map: dedicated registered threads, block-partitioned.

        Pool threads are anonymous to the race detector (and invisible to
        the cooperative scheduler), so under an active sanitizer the map
        runs on one dedicated thread per worker instead: each thread is
        registered for its lifetime and walks a contiguous block of the
        item range in index order — the same task->result mapping as the
        pool path, with the fork/join happens-before edges made explicit.
        """
        n = len(items)
        num_workers = min(self.num_workers, n)
        blocks = block_partition(n, num_workers)
        results: list[Any] = [None] * n
        errors: list[BaseException | None] = [None] * n
        team = sanitizer.team_begin(num_workers, kind="exec")

        def runner(worker: int) -> None:
            try:
                sanitizer.thread_begin(team, worker)
                for i in blocks[worker]:
                    results[i] = fn(i, items[i])
            except BaseException as exc:  # noqa: BLE001 - reported to caller below
                errors[blocks[worker].start] = exc
            finally:
                try:
                    sanitizer.thread_end(team, worker)
                except BaseException as exc:  # noqa: BLE001 - deadlock found at teardown
                    if errors[blocks[worker].start] is None:
                        errors[blocks[worker].start] = exc

        threads = [
            threading.Thread(target=runner, args=(w,), name=f"exec-{w}", daemon=True)
            for w in range(num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sanitizer.team_end(team)
        for exc in errors:
            if exc is not None:
                raise exc
        return results


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------

#: Jobs awaiting pickup by freshly forked workers. Under the ``fork``
#: start method the (fn, items) payload is *inherited* through process
#: memory rather than pickled, which is what lets closures over driver
#: state (RDD lineage, broadcast tables) run in workers unmodified.
#: Keyed by a job token so concurrent maps (Spark jobs run from many
#: threads) never collide; entries are removed once workers have forked.
_FORK_JOBS: dict[int, tuple[Callable[[int, Any], Any], Sequence[Any]]] = {}
_FORK_LOCK = threading.Lock()
_FORK_TOKENS = iter(range(1, 1 << 62))


def _encode_error(exc: BaseException) -> tuple[bytes | None, str, str]:
    """(pickled exception or None, message, traceback) for the trip home."""
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = None
    return payload, f"{type(exc).__name__}: {exc}", traceback.format_exc()


def _run_chunk(
    fn: Callable[[int, Any], Any], items: Sequence[Any], lo: int, hi: int
) -> list[tuple[int, bool, Any]]:
    out: list[tuple[int, bool, Any]] = []
    for i in range(lo, hi):
        try:
            out.append((i, True, fn(i, items[i])))
        except BaseException as exc:  # noqa: BLE001 - shipped back to the driver
            out.append((i, False, _encode_error(exc)))
    return out


def _worker_main(
    worker_id: int,
    job_token: int | None,
    payload: bytes | None,
    chunks: list[tuple[int, int, int]],
    result_queue: Any,
) -> None:
    """Worker body: run assigned chunks, ship each back, then sign off."""
    if job_token is not None:
        fn, items = _FORK_JOBS[job_token]  # inherited via fork
    else:
        fn, items = _loads_payload(payload)
    for chunk_id, lo, hi in chunks:
        results = _run_chunk(fn, items, lo, hi)
        try:
            result_queue.put(("chunk", worker_id, chunk_id, results))
        except Exception as exc:  # unpicklable result: report, don't die
            substitute = [
                (i, False, (None, f"result of task {i} could not be pickled: {exc}", ""))
                for i, _ok, _val in results
            ]
            result_queue.put(("chunk", worker_id, chunk_id, substitute))
    result_queue.put(("done", worker_id))


def _dumps_payload(fn: Callable[[int, Any], Any], items: Sequence[Any]) -> bytes:
    try:
        return pickle.dumps((fn, items))
    except Exception:
        try:
            import cloudpickle
        except ImportError:
            raise ValueError(
                "ProcessExecutor with the 'spawn' start method needs a picklable "
                "(fn, items) payload (and cloudpickle is not installed to widen "
                "that); use start_method='fork' or module-level functions"
            ) from None
        return cloudpickle.dumps((fn, items))


def _loads_payload(payload: bytes | None) -> tuple[Callable[[int, Any], Any], Sequence[Any]]:
    assert payload is not None
    return pickle.loads(payload)


class ProcessExecutor(Executor):
    """Real CPU parallelism: worker processes with chunked task batching.

    ``chunks_per_worker`` controls batching: the item range is split
    into ``min(n, num_workers * chunks_per_worker)`` contiguous blocks
    (assigned round-robin to workers), so one IPC round-trip carries a
    whole chunk of results instead of one task's worth — the classic
    latency/balance trade (more chunks = better balance, more IPC).

    ``start_method`` is ``"fork"`` where the platform offers it (task
    closures and items are inherited, never pickled), else ``"spawn"``
    (the payload must pickle; cloudpickle widens what qualifies). The
    workers are daemonic and freshly started per :meth:`map` call, so a
    crashed or leaked worker can never outlive the caller.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int = 4,
        *,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
    ) -> None:
        super().__init__(num_workers)
        self.chunks_per_worker = require_positive_int("chunks_per_worker", chunks_per_worker)
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        if start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} not available on this platform "
                f"(have {available})"
            )
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)

    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        n = len(items)
        if n == 0:
            return []
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.process",
            backend=self.name, tasks=n, workers=self.num_workers,
            start_method=self.start_method,
        ):
            return self._map_processes(fn, items, n)

    def _map_processes(
        self, fn: Callable[[int, Any], Any], items: Sequence[Any], n: int
    ) -> list[Any]:
        num_workers = min(self.num_workers, n)
        num_chunks = min(n, num_workers * self.chunks_per_worker)
        chunk_bounds = [
            (c, r.start, r.stop) for c, r in enumerate(block_partition(n, num_chunks))
        ]
        # Round-robin chunk -> worker keeps contiguous blocks spread evenly.
        assignments: list[list[tuple[int, int, int]]] = [[] for _ in range(num_workers)]
        for chunk in chunk_bounds:
            assignments[chunk[0] % num_workers].append(chunk)

        token: int | None = None
        payload: bytes | None = None
        if self.start_method == "fork":
            token = next(_FORK_TOKENS)
            with _FORK_LOCK:
                _FORK_JOBS[token] = (fn, items)
        else:
            payload = _dumps_payload(fn, items)

        result_queue = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(w, token, payload, assignments[w], result_queue),
                name=f"executor-worker-{w}",
                daemon=True,
            )
            for w in range(num_workers)
        ]
        try:
            for p in workers:
                p.start()
        finally:
            if token is not None:
                # Forked children hold their inherited copy; drop ours.
                with _FORK_LOCK:
                    _FORK_JOBS.pop(token, None)

        interrupted = False
        try:
            results, errors, crashed = self._collect(workers, result_queue, n)
        except BaseException:
            # KeyboardInterrupt / cancellation mid-collect: the workers
            # may be wedged in a task, so don't grant them the graceful
            # join window — terminate now and re-raise with no orphans.
            interrupted = True
            raise
        finally:
            for p in workers:
                if interrupted:
                    if p.is_alive():
                        p.terminate()
                    p.join(timeout=1.0)
                    if p.is_alive():  # pragma: no cover - SIGTERM-proof task
                        p.kill()
                        p.join(timeout=1.0)
                else:
                    p.join(timeout=5.0)
                    if p.is_alive():  # pragma: no cover - stuck worker backstop
                        p.terminate()
                        p.join(timeout=1.0)
            result_queue.close()
            if interrupted:
                # The feeder thread may hold buffered results for dead
                # readers; don't let its join block the unwind.
                result_queue.cancel_join_thread()

        if errors:
            index = min(errors)
            exc_payload, message, tb_text = errors[index]
            if exc_payload is not None:
                try:
                    raise pickle.loads(exc_payload)
                except TaskFailedError:
                    raise
                except Exception as original:
                    if f"{type(original).__name__}: {original}" == message:
                        raise original from None
            raise TaskFailedError(index, message, tb_text)
        if crashed:
            worker_id, exitcode = crashed[0]
            missing = tuple(i for i in range(n) if i not in results)
            raise WorkerCrashError(worker_id, exitcode, results, missing)
        return [results[i] for i in range(n)]

    def _collect(
        self, workers: list[Any], result_queue: Any, n: int
    ) -> tuple[dict[int, Any], dict[int, tuple[bytes | None, str, str]], list[tuple[int, int | None]]]:
        """Drain chunk results until every worker signed off or died."""
        results: dict[int, Any] = {}
        errors: dict[int, tuple[bytes | None, str, str]] = {}
        pending = set(range(len(workers)))
        crashed: list[tuple[int, int | None]] = []
        while pending:
            try:
                message = result_queue.get(timeout=0.05)
            except queue_mod.Empty:
                for w in sorted(pending):
                    proc = workers[w]
                    if not proc.is_alive():
                        # Late messages may still sit in the pipe: give the
                        # queue one grace pass before declaring the loss.
                        deadline = time.monotonic() + 0.25
                        drained = False
                        while time.monotonic() < deadline:
                            try:
                                late = result_queue.get(timeout=0.05)
                            except queue_mod.Empty:
                                continue
                            self._apply(late, results, errors, pending)
                            drained = True
                            break
                        if drained and w not in pending:
                            continue
                        if not drained:
                            pending.discard(w)
                            crashed.append((w, proc.exitcode))
                continue
            self._apply(message, results, errors, pending)
        return results, errors, crashed

    @staticmethod
    def _apply(
        message: tuple[Any, ...],
        results: dict[int, Any],
        errors: dict[int, tuple[bytes | None, str, str]],
        pending: set[int],
    ) -> None:
        kind = message[0]
        if kind == "chunk":
            for index, ok, value in message[3]:
                if ok:
                    results[index] = value
                else:
                    errors[index] = value
        elif kind == "done":
            pending.discard(message[1])


def get_executor(
    backend: "str | Executor", num_workers: int = 4, **kwargs: Any
) -> Executor:
    """Resolve a backend name (or pass an :class:`Executor` through).

    ``kwargs`` are forwarded to the backend constructor (e.g.
    ``chunks_per_worker``/``start_method`` for ``"process"``).
    """
    if isinstance(backend, Executor):
        return backend
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(num_workers, **kwargs)
    if backend == "process":
        return ProcessExecutor(num_workers, **kwargs)
    raise ValueError(f"backend must be one of {BACKENDS} or an Executor, got {backend!r}")
