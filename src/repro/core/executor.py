"""Pluggable executor backends: serial, thread, and process parallelism.

Every engine in the reproduction fans embarrassingly-parallel work over
local workers — Spark tasks over partitions, MapReduce map/reduce tasks
within a rank, the k-means assignment step over point chunks, HPO
trials over the grid. This module gives them one shared substrate with
three interchangeable backends:

- :class:`SerialExecutor` — a plain loop on the calling thread.
  Zero concurrency, zero overhead; the determinism baseline.
- :class:`ThreadExecutor` — a fresh ``ThreadPoolExecutor`` per map
  (fresh pools keep nested maps deadlock-free). Real concurrency for
  GIL-releasing kernels (numpy, IO); serialized for pure-Python loops.
- :class:`ProcessExecutor` — real CPU parallelism on a **persistent
  pool** of ``multiprocessing`` workers: processes spawn once per
  executor lifetime, jobs are dispatched warm over per-worker task
  queues, numpy datasets travel zero-copy as shared-memory descriptors
  (:meth:`Executor.publish`), and small jobs fuse into one chunk per
  worker so dispatch never costs more than one message per worker.

The three backends are **result-identical by construction**: tasks are
pure functions of ``(index, item)``, results are merged in index order,
and per-task seeds come from :func:`derive_task_seed` — a pure function
of ``(base_seed, index)`` — so no backend can leak scheduling order
into the output. ``tests/core/test_executor_determinism.py`` sweeps
seeds over all three backends for k-means, MapReduce wordcount, and
accumulator-carrying Spark jobs to hold that line.

Process-backend ground rules (docs/executors.md has the full story):

- A job whose ``(fn, items)`` payload pickles (module-level functions,
  ``functools.partial``, plain-data items, :class:`DataRef` descriptors)
  runs on the persistent pool — the fast path. Payloads that do *not*
  pickle (closures over driver state: RDD lineage, broadcast tables)
  fall back to the legacy fork-per-map path under the ``fork`` start
  method, where workers inherit the closure through process memory;
  under ``spawn`` they raise a clear error (``cloudpickle`` widens what
  qualifies when importable).
- Large picklable payloads also prefer the fork path — inheriting a
  100 MB items list is free, shipping it per worker is not. Publish
  big numpy inputs with :meth:`Executor.publish` instead and pass index
  ranges; the descriptors keep pooled payloads tiny.
- Task *results* (and task exceptions) always travel back by pickle,
  under either path — keep them plain data, or write them into a
  ``writable=True`` published segment over disjoint index ranges.
- A worker that dies without delivering its results (segfault,
  ``os._exit``, OOM kill) surfaces as :class:`WorkerCrashError`
  carrying the completed results and the missing task indices, so
  schedulers (e.g. the Spark context) can re-execute the lost tasks
  and record the crash in their fault reports. The pool retires the
  dead worker and respawns the slot on the next map.
- ``close()``/``stop()`` terminates the pool and unlinks every segment
  this executor published; KeyboardInterrupt mid-map kills the pool
  promptly (no orphans) and an ``atexit`` sweep in :mod:`repro.core.shm`
  backstops segment cleanup on any exit path.
"""

from __future__ import annotations

import functools
import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.sanitizer.runtime import get_sanitizer
from repro.trace.tracer import get_tracer
from repro.util.partition import block_partition
from repro.util.validation import require_positive_int

__all__ = [
    "BACKENDS",
    "DataRef",
    "Executor",
    "InlineArrayRef",
    "SerialExecutor",
    "SharedArrayRef",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "derive_task_seed",
    "TaskFailedError",
    "WorkerCrashError",
]

#: The recognized backend names, in determinism-baseline-first order.
BACKENDS = ("serial", "thread", "process")

_MASK64 = (1 << 64) - 1

#: Pooled payloads above this size prefer fork-inheritance (zero-copy)
#: over being shipped once per worker through the task queues.
_POOL_PAYLOAD_LIMIT = 4 << 20


def derive_task_seed(base_seed: int, index: int) -> int:
    """A per-task seed that is a pure function of ``(base_seed, index)``.

    SplitMix64 finalizer over the combined words: well-mixed (adjacent
    indices give unrelated seeds), backend- and scheduling-independent,
    and identical on every platform — the shared-seed plumbing that
    keeps stochastic tasks bit-identical across ``serial``/``thread``/
    ``process`` backends.
    """
    x = ((base_seed & _MASK64) * 0x9E3779B97F4A7C15 + (index & _MASK64) + 1) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _seeded_call(
    fn: Callable[[int, Any, int], Any], base_seed: int, index: int, item: Any
) -> Any:
    """The :meth:`Executor.map_seeded` shim — module-level (not a
    closure) so a seeded job pickles whenever its ``fn`` does and stays
    eligible for the persistent pool."""
    return fn(index, item, derive_task_seed(base_seed, index))


class TaskFailedError(RuntimeError):
    """A task raised in a worker and its exception could not be re-raised.

    Raised by :class:`ProcessExecutor` when the original exception does
    not survive the trip back through pickle; carries the failing task
    ``index`` and the worker-side ``traceback_text``. (When the original
    exception *does* unpickle, it is re-raised as-is, matching the
    serial and thread backends.)
    """

    def __init__(self, index: int, message: str, traceback_text: str = "") -> None:
        super().__init__(
            f"task {index} failed in worker: {message}"
            + (f"\n--- worker traceback ---\n{traceback_text}" if traceback_text else "")
        )
        self.index = index
        self.traceback_text = traceback_text


class WorkerCrashError(RuntimeError):
    """A worker process died without delivering all its task results.

    ``completed`` maps task index -> result for everything that made it
    back (from all workers); ``missing`` is the sorted tuple of indices
    whose results were lost. Schedulers catch this to re-execute the
    missing tasks and feed their fault-report paths.
    """

    def __init__(
        self,
        worker: int,
        exitcode: int | None,
        completed: dict[int, Any],
        missing: tuple[int, ...],
    ) -> None:
        super().__init__(
            f"worker {worker} crashed (exitcode={exitcode}) with "
            f"{len(missing)} task result(s) undelivered: {list(missing)[:8]}"
            + ("..." if len(missing) > 8 else "")
        )
        self.worker = worker
        self.exitcode = exitcode
        self.completed = completed
        self.missing = missing


# ----------------------------------------------------------------------
# zero-copy data references
# ----------------------------------------------------------------------

class DataRef:
    """A backend-uniform handle to a published read-mostly numpy array.

    Obtained from :meth:`Executor.publish`; tasks call :meth:`array` to
    get the data wherever they run. On the serial/thread backends the
    ref *is* the original array (nothing to share); on the process
    backend it pickles as a shared-memory descriptor and workers attach
    zero-copy. Refs published with ``writable=True`` are result
    windows: tasks may write **disjoint** index ranges and the driver
    sees the writes after ``map`` returns.
    """

    def array(self) -> Any:
        raise NotImplementedError


class InlineArrayRef(DataRef):
    """The serial/thread (and owner-process) ref: the array itself."""

    __slots__ = ("_array",)

    def __init__(self, array: Any) -> None:
        self._array = array

    def array(self) -> Any:
        return self._array


class SharedArrayRef(DataRef):
    """The process-backend ref: ``(segment, dtype, shape)`` on the wire.

    In the owning process it resolves to the owner's live view; after
    pickling into a worker it attaches the named segment (cached per
    worker process) — read-only unless published ``writable=True``.
    """

    def __init__(self, segment: Any, *, writable: bool = False) -> None:
        self._descriptor = segment.descriptor
        self._writable = writable
        self._segment = segment  # owner-side only; not pickled

    @property
    def descriptor(self) -> Any:
        return self._descriptor

    @property
    def segment_name(self) -> str:
        return self._descriptor.segment

    def array(self) -> Any:
        if self._segment is not None:
            return self._segment.array()
        from repro.core.shm import attach_array

        return attach_array(self._descriptor, writable=self._writable)

    def __getstate__(self) -> dict[str, Any]:
        return {"descriptor": self._descriptor, "writable": self._writable}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._descriptor = state["descriptor"]
        self._writable = state["writable"]
        self._segment = None

    def __repr__(self) -> str:
        return f"SharedArrayRef({self._descriptor!r}, writable={self._writable})"


class Executor(ABC):
    """Ordered map over independent tasks: ``fn(index, item)`` per item.

    Contract shared by all backends (what the determinism tests pin):

    - results are returned **in item order**, never completion order;
    - ``fn`` must be a pure function of its arguments (plus read-only
      shared state) — backends may run it anywhere, in any order;
    - a task exception propagates to the caller (lowest failing index
      wins when several fail);
    - :meth:`map_seeded` hands task ``i`` the seed
      ``derive_task_seed(base_seed, i)`` regardless of backend.

    Executors are context managers; only :class:`ProcessExecutor`-style
    backends with real resources do anything on close.
    """

    name: str = "abstract"

    def __init__(self, num_workers: int = 4) -> None:
        self.num_workers = require_positive_int("num_workers", num_workers)

    @abstractmethod
    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        """Run ``fn(i, items[i])`` for every i; results in index order."""

    def map_seeded(
        self, fn: Callable[[int, Any, int], Any], items: Sequence[Any], base_seed: int
    ) -> list[Any]:
        """:meth:`map` with a derived per-task seed as a third argument."""
        return self.map(functools.partial(_seeded_call, fn, base_seed), items)

    def publish(self, array: Any, *, writable: bool = False) -> DataRef:
        """Make ``array`` reachable by tasks zero-copy; returns a ref.

        Uniform semantics across backends: the published buffer is a
        *snapshot* independent of the caller's array (don't mutate an
        array while it is published read-only). The default
        (serial/thread) implementation wraps read-only publications
        as-is — tasks on the caller's threads already share the address
        space — and copies ``writable=True`` ones, matching the
        process backend's copy-into-segment (so publishing one source
        array into two writable buffers yields two buffers everywhere).
        Release with :meth:`unpublish` (or :meth:`close`, which
        releases everything still published).
        """
        return InlineArrayRef(array.copy() if writable else array)

    def unpublish(self, ref: DataRef) -> None:
        """Release one published ref (no-op for inline refs; idempotent)."""

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def stop(self) -> None:
        """Alias of :meth:`close` — engine-style lifecycle symmetry."""
        self.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class SerialExecutor(Executor):
    """The baseline: a plain loop on the calling thread."""

    name = "serial"

    def __init__(self, num_workers: int = 1) -> None:
        super().__init__(num_workers)

    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.serial",
            backend=self.name, tasks=len(items),
        ):
            return [fn(i, item) for i, item in enumerate(items)]


class ThreadExecutor(Executor):
    """Today's engine behaviour: a fresh thread pool per map call.

    A fresh pool keeps nested maps (a task that itself maps — e.g. a
    Spark shuffle materializing inside a job) deadlock-free, exactly
    like ``SparkContext``'s fresh pool per job. Exceptions re-raise the
    original exception object of the lowest failing index.
    """

    name = "thread"

    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        if not items:
            return []
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.thread",
            backend=self.name, tasks=len(items), workers=self.num_workers,
        ):
            sanitizer = get_sanitizer()
            if sanitizer is not None:
                return self._map_sanitized(fn, items, sanitizer)
            if len(items) == 1:
                return [fn(0, items[0])]
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                futures = [pool.submit(fn, i, item) for i, item in enumerate(items)]
                return [f.result() for f in futures]

    def _map_sanitized(
        self, fn: Callable[[int, Any], Any], items: Sequence[Any], sanitizer: Any
    ) -> list[Any]:
        """The instrumented map: dedicated registered threads, block-partitioned.

        Pool threads are anonymous to the race detector (and invisible to
        the cooperative scheduler), so under an active sanitizer the map
        runs on one dedicated thread per worker instead: each thread is
        registered for its lifetime and walks a contiguous block of the
        item range in index order — the same task->result mapping as the
        pool path, with the fork/join happens-before edges made explicit.
        """
        n = len(items)
        num_workers = min(self.num_workers, n)
        blocks = block_partition(n, num_workers)
        results: list[Any] = [None] * n
        errors: list[BaseException | None] = [None] * n
        team = sanitizer.team_begin(num_workers, kind="exec")

        def runner(worker: int) -> None:
            try:
                sanitizer.thread_begin(team, worker)
                for i in blocks[worker]:
                    results[i] = fn(i, items[i])
            except BaseException as exc:  # noqa: BLE001 - reported to caller below
                errors[blocks[worker].start] = exc
            finally:
                try:
                    sanitizer.thread_end(team, worker)
                except BaseException as exc:  # noqa: BLE001 - deadlock found at teardown
                    if errors[blocks[worker].start] is None:
                        errors[blocks[worker].start] = exc

        threads = [
            threading.Thread(target=runner, args=(w,), name=f"exec-{w}", daemon=True)
            for w in range(num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sanitizer.team_end(team)
        for exc in errors:
            if exc is not None:
                raise exc
        return results


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------

#: Jobs awaiting pickup by freshly forked workers (the legacy fallback
#: path for unpicklable payloads). Under the ``fork`` start method the
#: (fn, items) payload is *inherited* through process memory rather
#: than pickled, which is what lets closures over driver state (RDD
#: lineage, broadcast tables) run in workers unmodified. Keyed by a job
#: token so concurrent maps (Spark jobs run from many threads) never
#: collide; entries are removed once workers have forked.
_FORK_JOBS: dict[int, tuple[Callable[[int, Any], Any], Sequence[Any]]] = {}
_FORK_LOCK = threading.Lock()
_FORK_TOKENS = iter(range(1, 1 << 62))


def _encode_error(exc: BaseException) -> tuple[bytes | None, str, str]:
    """(pickled exception or None, message, traceback) for the trip home."""
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = None
    return payload, f"{type(exc).__name__}: {exc}", traceback.format_exc()


def _run_chunk(
    fn: Callable[[int, Any], Any], items: Sequence[Any], lo: int, hi: int
) -> list[tuple[int, bool, Any]]:
    out: list[tuple[int, bool, Any]] = []
    for i in range(lo, hi):
        try:
            out.append((i, True, fn(i, items[i])))
        except BaseException as exc:  # noqa: BLE001 - shipped back to the driver
            out.append((i, False, _encode_error(exc)))
    return out


def _put_chunk(
    result_queue: Any, worker_id: int, job_id: int, chunk_id: int,
    results: list[tuple[int, bool, Any]],
) -> None:
    """Ship one chunk's results home; unpicklable results degrade to errors."""
    try:
        result_queue.put(("chunk", worker_id, job_id, chunk_id, results))
    except Exception as exc:  # unpicklable result: report, don't die
        substitute = [
            (i, False, (None, f"result of task {i} could not be pickled: {exc}", ""))
            for i, _ok, _val in results
        ]
        result_queue.put(("chunk", worker_id, job_id, chunk_id, substitute))


def _fork_worker_main(
    worker_id: int,
    job_token: int,
    chunks: list[tuple[int, int, int]],
    result_queue: Any,
) -> None:
    """Legacy fork-path worker body: run inherited chunks, then sign off."""
    from repro.core import shm as shm_mod

    shm_mod.forget_inherited_state()
    fn, items = _FORK_JOBS[job_token]  # inherited via fork
    for chunk_id, lo, hi in chunks:
        _put_chunk(result_queue, worker_id, 0, chunk_id, _run_chunk(fn, items, lo, hi))
    result_queue.put(("done", worker_id, 0))


def _pool_worker_main(worker_id: int, task_queue: Any, result_queue: Any) -> None:
    """Persistent pool worker: serve jobs until told to stop.

    Each job message carries the pickled ``(fn, items)`` payload once
    (tiny when inputs travel as :class:`SharedArrayRef` descriptors)
    plus this worker's chunk list; chunk results stream home as they
    complete, and a ``done`` message ends the job. Shared-memory
    attachments are cached across jobs and closed on the way out.
    """
    from repro.core import shm as shm_mod

    shm_mod.forget_inherited_state()
    try:
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                break
            _kind, job_id, payload, chunks = message
            try:
                fn, items = _loads_payload(payload)
            except BaseException as exc:  # noqa: BLE001 - reported per task
                encoded = _encode_error(exc)
                for chunk_id, lo, hi in chunks:
                    result_queue.put((
                        "chunk", worker_id, job_id, chunk_id,
                        [(i, False, encoded) for i in range(lo, hi)],
                    ))
                result_queue.put(("done", worker_id, job_id))
                continue
            for chunk_id, lo, hi in chunks:
                _put_chunk(
                    result_queue, worker_id, job_id, chunk_id,
                    _run_chunk(fn, items, lo, hi),
                )
            result_queue.put(("done", worker_id, job_id))
    finally:
        shm_mod.release_attachments()


def _shutdown_pool(
    lock: threading.RLock,
    workers: list[Any],
    task_queues: list[Any],
    result_box: list[Any],
    segments: dict[str, Any],
) -> None:
    """Stop pool workers, drop queues, unlink segments (idempotent).

    Module-level over the executor's *containers* (not the executor)
    so a ``weakref.finalize`` can run it when an un-closed executor is
    garbage-collected — the same backstop ``multiprocessing.Pool``
    uses, keeping dropped pools from idling forever.
    """
    with lock:
        for w in range(len(workers)):
            proc, task_queue = workers[w], task_queues[w]
            if proc is not None and proc.is_alive() and task_queue is not None:
                try:
                    task_queue.put(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for w in range(len(workers)):
            proc = workers[w]
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM-proof task
                proc.kill()
                proc.join(timeout=0.5)
            workers[w] = None
            task_queue, task_queues[w] = task_queues[w], None
            if task_queue is not None:
                task_queue.cancel_join_thread()
                task_queue.close()
        result_queue, result_box[0] = result_box[0], None
        if result_queue is not None:
            result_queue.cancel_join_thread()
            result_queue.close()
        leftovers = list(segments.values())
        segments.clear()
    for segment in leftovers:
        segment.unlink()


def _dumps_payload(fn: Callable[[int, Any], Any], items: Sequence[Any]) -> bytes:
    try:
        return pickle.dumps((fn, items))
    except Exception:
        try:
            import cloudpickle
        except ImportError:
            raise ValueError(
                "ProcessExecutor with the 'spawn' start method needs a picklable "
                "(fn, items) payload (and cloudpickle is not installed to widen "
                "that); use start_method='fork' or module-level functions"
            ) from None
        return cloudpickle.dumps((fn, items))


def _loads_payload(payload: bytes | None) -> tuple[Callable[[int, Any], Any], Sequence[Any]]:
    assert payload is not None
    return pickle.loads(payload)


class ProcessExecutor(Executor):
    """Real CPU parallelism: a persistent worker pool with zero-copy data.

    Workers spawn **once per executor lifetime** (lazily, on the first
    pooled map) and are reused warm across jobs — the fork-per-map tax
    the seed benchmarks measured is paid once, not per call. Each map
    picks its dispatch path:

    - **pool** — the ``(fn, items)`` payload pickles and is small:
      it is sent once per worker over that worker's task queue, chunks
      stream back over a shared result queue. Publish numpy inputs with
      :meth:`publish` so the payload stays descriptor-sized.
    - **fork** (legacy fallback, ``fork`` platforms only) — the payload
      does not pickle (driver-state closures) or is large enough that
      inheritance is cheaper: fresh workers fork for this map and
      inherit the payload through process memory, exactly the pre-pool
      behaviour.

    ``chunks_per_worker`` controls batching on both paths: the item
    range splits into at most ``num_workers * chunks_per_worker``
    contiguous blocks (assigned round-robin), and **chunk fusion**
    collapses small jobs to one chunk per worker so a 4-task job costs
    4 messages, not 16. The chunk->index mapping is static, so results
    are bit-identical to serial regardless of path or scheduling.

    A crashed worker surfaces as :class:`WorkerCrashError`; the dead
    slot respawns on the next map. KeyboardInterrupt kills the pool
    promptly (no orphaned children). ``close()``/``stop()`` terminates
    the pool and unlinks every published segment; both are idempotent.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int = 4,
        *,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
    ) -> None:
        super().__init__(num_workers)
        self.chunks_per_worker = require_positive_int("chunks_per_worker", chunks_per_worker)
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        if start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} not available on this platform "
                f"(have {available})"
            )
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._owner_pid = os.getpid()
        self._pool_lock = threading.RLock()
        self._workers: list[Any] = [None] * self.num_workers
        self._task_queues: list[Any] = [None] * self.num_workers
        self._result_box: list[Any] = [None]
        self._job_ids = itertools.count(1)
        self._segments: dict[str, Any] = {}
        self._closed = False
        # GC backstop: an executor dropped without close() still stops
        # its pool and unlinks its segments (cf. multiprocessing.Pool).
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._pool_lock,
            self._workers, self._task_queues, self._result_box, self._segments,
        )

    @property
    def _result_queue(self) -> Any:
        return self._result_box[0]

    @_result_queue.setter
    def _result_queue(self, value: Any) -> None:
        self._result_box[0] = value

    # ------------------------------------------------------------------
    # zero-copy publication
    # ------------------------------------------------------------------
    def publish(self, array: Any, *, writable: bool = False) -> DataRef:
        """Copy ``array`` into a shared-memory segment; tasks attach free.

        The returned ref pickles as a ``(segment, dtype, shape)``
        descriptor. The segment lives until :meth:`unpublish` or
        :meth:`close`; with ``writable=True`` tasks may write disjoint
        index ranges and the driver sees the writes after ``map``.
        """
        if os.getpid() != self._owner_pid:
            # Nested use inside one of our own workers: the address
            # space is already shared (fork) or private (downgraded
            # serial map) — no segment needed either way.
            return InlineArrayRef(array)
        from repro.core.shm import publish_array

        with self._pool_lock:
            self._check_open()
            segment = publish_array(array)
            self._segments[segment.name] = segment
        return SharedArrayRef(segment, writable=writable)

    def unpublish(self, ref: DataRef) -> None:
        name = getattr(ref, "segment_name", None)
        if name is None:
            return
        with self._pool_lock:
            segment = self._segments.pop(name, None)
        if segment is not None:
            segment.unlink()

    # ------------------------------------------------------------------
    # map
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[int, Any], Any], items: Sequence[Any]) -> list[Any]:
        n = len(items)
        if n == 0:
            return []
        if os.getpid() != self._owner_pid:
            # Nested map inside one of our own workers: daemonic
            # processes cannot fork children, so compute inline — the
            # same results, no scheduling.
            return [fn(i, item) for i, item in enumerate(items)]
        self._check_open()
        payload = self._encode_job(fn, items)
        mode = "pool" if payload is not None else "fork"
        with get_tracer().span(
            "executor.map", category="executor", scope="executor.process",
            backend=self.name, tasks=n, workers=self.num_workers,
            start_method=self.start_method, mode=mode,
        ):
            if payload is None:
                return self._map_fork(fn, items, n)
            return self._map_pool(payload, n)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self!r} has been closed; create a fresh executor")

    def _encode_job(
        self, fn: Callable[[int, Any], Any], items: Sequence[Any]
    ) -> bytes | None:
        """The pooled payload, or None when the fork path should run.

        Under ``spawn`` there is no fork fallback, so an unpicklable
        payload raises the clear error from :func:`_dumps_payload`.
        """
        if self.start_method != "fork":
            return _dumps_payload(fn, items)
        try:
            payload = pickle.dumps((fn, items))
        except Exception:
            return None
        if len(payload) > _POOL_PAYLOAD_LIMIT:
            return None  # inherit big payloads instead of shipping them
        return payload

    def _chunk_assignments(self, n: int) -> list[list[tuple[int, int, int]]]:
        """Static chunk plan: fused for small jobs, round-robin always.

        The mapping is a pure function of ``(n, num_workers,
        chunks_per_worker)`` — never of the dispatch path or schedule —
        which is what keeps results bit-identical to serial.
        """
        num_workers = min(self.num_workers, n)
        limit = num_workers * self.chunks_per_worker
        # Chunk fusion: a job with fewer items than the chunk budget
        # collapses to one contiguous chunk per worker (<= one dispatch
        # and one result message per worker).
        num_chunks = num_workers if n <= limit else limit
        bounds = [
            (c, r.start, r.stop) for c, r in enumerate(block_partition(n, num_chunks))
        ]
        assignments: list[list[tuple[int, int, int]]] = [[] for _ in range(self.num_workers)]
        for chunk in bounds:
            assignments[chunk[0] % num_workers].append(chunk)
        return assignments

    def _finalize(
        self,
        results: dict[int, Any],
        errors: dict[int, tuple[bytes | None, str, str]],
        crashed: list[tuple[int, int | None]],
        n: int,
    ) -> list[Any]:
        """Shared error/crash/result policy for both dispatch paths."""
        if errors:
            index = min(errors)
            exc_payload, message, tb_text = errors[index]
            if exc_payload is not None:
                try:
                    raise pickle.loads(exc_payload)
                except TaskFailedError:
                    raise
                except Exception as original:
                    if f"{type(original).__name__}: {original}" == message:
                        raise original from None
            raise TaskFailedError(index, message, tb_text)
        if crashed:
            worker_id, exitcode = crashed[0]
            missing = tuple(i for i in range(n) if i not in results)
            raise WorkerCrashError(worker_id, exitcode, results, missing)
        return [results[i] for i in range(n)]

    # ------------------------------------------------------------------
    # pooled dispatch
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        """Spawn missing workers (first map, or respawn after a crash)."""
        if self._result_queue is None:
            self._result_queue = self._ctx.Queue()
        for w in range(self.num_workers):
            proc = self._workers[w]
            if proc is not None and proc.is_alive():
                continue
            task_queue = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_pool_worker_main,
                args=(w, task_queue, self._result_queue),
                name=f"executor-worker-{w}",
                daemon=True,
            )
            proc.start()
            self._workers[w] = proc
            self._task_queues[w] = task_queue

    def _map_pool(self, payload: bytes, n: int) -> list[Any]:
        with self._pool_lock:
            self._check_open()
            self._ensure_pool()
            job_id = next(self._job_ids)
            assignments = self._chunk_assignments(n)
            active = {w for w in range(self.num_workers) if assignments[w]}
            for w in sorted(active):
                self._task_queues[w].put(("job", job_id, payload, assignments[w]))
            try:
                results, errors, crashed = self._collect_pool(job_id, active)
            except BaseException:
                # KeyboardInterrupt / cancellation mid-collect: workers
                # may be wedged in a task — kill the pool now, re-raise
                # with no orphans. The next map respawns a fresh pool.
                self._kill_pool()
                raise
        return self._finalize(results, errors, crashed, n)

    def _collect_pool(
        self, job_id: int, pending: set[int]
    ) -> tuple[dict[int, Any], dict[int, tuple[bytes | None, str, str]], list[tuple[int, int | None]]]:
        """Drain this job's results until every active worker signed off
        or died; dead workers are retired (respawned on the next map)."""
        results: dict[int, Any] = {}
        errors: dict[int, tuple[bytes | None, str, str]] = {}
        crashed: list[tuple[int, int | None]] = []
        while pending:
            try:
                message = self._result_queue.get(timeout=0.05)
            except queue_mod.Empty:
                for w in sorted(pending):
                    proc = self._workers[w]
                    if proc is not None and proc.is_alive():
                        continue
                    # Late messages may still sit in the pipe: give the
                    # queue one grace pass before declaring the loss.
                    deadline = time.monotonic() + 0.25
                    drained = False
                    while time.monotonic() < deadline:
                        try:
                            late = self._result_queue.get(timeout=0.05)
                        except queue_mod.Empty:
                            continue
                        self._apply(late, job_id, results, errors, pending)
                        drained = True
                        break
                    if drained and w not in pending:
                        continue
                    if not drained:
                        pending.discard(w)
                        crashed.append((w, proc.exitcode if proc is not None else None))
                        self._retire_worker(w)
                continue
            self._apply(message, job_id, results, errors, pending)
        return results, errors, crashed

    @staticmethod
    def _apply(
        message: tuple[Any, ...],
        job_id: int,
        results: dict[int, Any],
        errors: dict[int, tuple[bytes | None, str, str]],
        pending: set[int],
    ) -> None:
        kind = message[0]
        if message[2] != job_id:
            return  # stale message from an interrupted earlier job
        if kind == "chunk":
            for index, ok, value in message[4]:
                if ok:
                    results[index] = value
                else:
                    errors[index] = value
        elif kind == "done":
            pending.discard(message[1])

    def _retire_worker(self, w: int) -> None:
        """Forget a dead worker's slot so the next map respawns it."""
        proc, self._workers[w] = self._workers[w], None
        task_queue, self._task_queues[w] = self._task_queues[w], None
        if proc is not None:
            proc.join(timeout=0.1)
        if task_queue is not None:
            task_queue.cancel_join_thread()
            task_queue.close()

    def _kill_pool(self) -> None:
        """Terminate every pool worker promptly (interrupt/cancel path)."""
        for w in range(self.num_workers):
            proc = self._workers[w]
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM-proof task
                proc.kill()
                proc.join(timeout=1.0)
            self._workers[w] = None
            task_queue, self._task_queues[w] = self._task_queues[w], None
            if task_queue is not None:
                task_queue.cancel_join_thread()
                task_queue.close()
        if self._result_queue is not None:
            # The feeder thread may hold buffered results for dead
            # readers; don't let its join block the unwind.
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
            self._result_queue = None

    # ------------------------------------------------------------------
    # legacy fork dispatch (unpicklable / oversized payloads)
    # ------------------------------------------------------------------
    def _map_fork(
        self, fn: Callable[[int, Any], Any], items: Sequence[Any], n: int
    ) -> list[Any]:
        assignments = self._chunk_assignments(n)
        num_active = sum(1 for a in assignments if a)

        token = next(_FORK_TOKENS)
        with _FORK_LOCK:
            _FORK_JOBS[token] = (fn, items)

        result_queue = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=_fork_worker_main,
                args=(w, token, assignments[w], result_queue),
                name=f"executor-worker-{w}",
                daemon=True,
            )
            for w in range(num_active)
        ]
        try:
            for p in workers:
                p.start()
        finally:
            # Forked children hold their inherited copy; drop ours.
            with _FORK_LOCK:
                _FORK_JOBS.pop(token, None)

        interrupted = False
        try:
            results, errors, crashed = self._collect_fork(workers, result_queue)
        except BaseException:
            # KeyboardInterrupt / cancellation mid-collect: the workers
            # may be wedged in a task, so don't grant them the graceful
            # join window — terminate now and re-raise with no orphans.
            interrupted = True
            raise
        finally:
            for p in workers:
                if interrupted:
                    if p.is_alive():
                        p.terminate()
                    p.join(timeout=1.0)
                    if p.is_alive():  # pragma: no cover - SIGTERM-proof task
                        p.kill()
                        p.join(timeout=1.0)
                else:
                    p.join(timeout=5.0)
                    if p.is_alive():  # pragma: no cover - stuck worker backstop
                        p.terminate()
                        p.join(timeout=1.0)
            result_queue.close()
            if interrupted:
                # The feeder thread may hold buffered results for dead
                # readers; don't let its join block the unwind.
                result_queue.cancel_join_thread()

        return self._finalize(results, errors, crashed, n)

    def _collect_fork(
        self, workers: list[Any], result_queue: Any
    ) -> tuple[dict[int, Any], dict[int, tuple[bytes | None, str, str]], list[tuple[int, int | None]]]:
        """Drain chunk results until every fork worker signed off or died."""
        results: dict[int, Any] = {}
        errors: dict[int, tuple[bytes | None, str, str]] = {}
        pending = set(range(len(workers)))
        crashed: list[tuple[int, int | None]] = []
        while pending:
            try:
                message = result_queue.get(timeout=0.05)
            except queue_mod.Empty:
                for w in sorted(pending):
                    proc = workers[w]
                    if not proc.is_alive():
                        deadline = time.monotonic() + 0.25
                        drained = False
                        while time.monotonic() < deadline:
                            try:
                                late = result_queue.get(timeout=0.05)
                            except queue_mod.Empty:
                                continue
                            self._apply(late, 0, results, errors, pending)
                            drained = True
                            break
                        if drained and w not in pending:
                            continue
                        if not drained:
                            pending.discard(w)
                            crashed.append((w, proc.exitcode))
                continue
            self._apply(message, 0, results, errors, pending)
        return results, errors, crashed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the pool and unlink every published segment (idempotent)."""
        with self._pool_lock:
            self._closed = True
        _shutdown_pool(
            self._pool_lock,
            self._workers, self._task_queues, self._result_box, self._segments,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_workers={self.num_workers}, "
            f"start_method={self.start_method!r})"
        )


def get_executor(
    backend: "str | Executor", num_workers: int = 4, **kwargs: Any
) -> Executor:
    """Resolve a backend name (or pass an :class:`Executor` through).

    ``kwargs`` are forwarded to the backend constructor (e.g.
    ``chunks_per_worker``/``start_method`` for ``"process"``).
    """
    if isinstance(backend, Executor):
        return backend
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(num_workers, **kwargs)
    if backend == "process":
        return ProcessExecutor(num_workers, **kwargs)
    raise ValueError(f"backend must be one of {BACKENDS} or an Executor, got {backend!r}")
