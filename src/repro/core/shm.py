"""Zero-copy numpy sharing over ``multiprocessing.shared_memory``.

The process backend's classic overhead trap is shipping whole datasets
through pickle: a k-means assignment step that forks per job and
serializes its point blocks loses to serial outright (the seed state of
``BENCH_executor_backends.json``). This module is the fix's data plane:
a dataset is *published* once into a named shared-memory segment, and
tasks receive only an :class:`ArrayDescriptor` — ``(segment_name,
dtype, shape)`` plus whatever index range the caller assigns — so the
bytes cross the process boundary zero times.

Three roles, three surfaces:

- **Driver (owner)** — :func:`publish_array` copies an array into a
  fresh segment and returns a :class:`SharedSegment` whose lifecycle is
  explicit: ``unlink()`` is idempotent, every live segment is tracked
  in a process-wide registry, and an ``atexit`` hook unlinks leftovers
  so a crashed driver cannot leak ``/dev/shm`` entries.
- **Worker (borrower)** — :func:`attach_array` maps a descriptor to a
  numpy view, cached per process so a persistent pool worker attaches
  once per segment, not once per task. Attached views are read-only
  unless the caller asks for a writable window (disjoint-range result
  segments); the attachment is *unregistered* from the worker's
  resource tracker so a worker exiting under the ``spawn`` start method
  can never unlink a segment the driver still owns.
- **Tests (auditors)** — :func:`active_segments` lists what this
  process currently owns, which is how the lifecycle property tests
  assert leak-freedom after normal stop, worker crash, cancellation,
  and KeyboardInterrupt.

Forked children inherit the owner registry by copy; they must call
:func:`forget_inherited_state` first thing (the pool worker main does)
so a child exit can never unlink segments it merely inherited.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ArrayDescriptor",
    "SharedSegment",
    "publish_array",
    "attach_array",
    "active_segments",
    "forget_inherited_state",
    "release_attachments",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<seq>``,
#: so leak audits (tests, ops) can scan /dev/shm for exactly our entries.
SEGMENT_PREFIX = "repro-shm"

_SEQ = itertools.count(1)
_LOCK = threading.Lock()
#: Segments created (and not yet unlinked) by *this* process.
_OWNED: dict[str, "SharedSegment"] = {}
#: Worker-side attachment cache: segment name -> SharedMemory handle.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


@dataclass(frozen=True)
class ArrayDescriptor:
    """The task-visible face of a published array: name, dtype, shape.

    This is all that crosses the process boundary — a few dozen bytes
    regardless of how large the dataset is. Pure data, trivially
    picklable, hashable (usable as a cache key).
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Payload size the segment must hold."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return int(np.dtype(self.dtype).itemsize) * count


class SharedSegment:
    """One owned shared-memory segment holding one numpy array.

    Created by :func:`publish_array`; the owner reads/writes through
    :meth:`array` (a live view — workers see driver writes and vice
    versa) and must :meth:`unlink` it exactly once, though the call is
    idempotent and the registry's ``atexit`` sweep backstops forgotten
    ones.
    """

    def __init__(self, descriptor: ArrayDescriptor, shm: shared_memory.SharedMemory) -> None:
        self.descriptor = descriptor
        self._shm: shared_memory.SharedMemory | None = shm
        self._view: np.ndarray | None = np.ndarray(
            descriptor.shape, dtype=descriptor.dtype, buffer=shm.buf
        )

    @property
    def name(self) -> str:
        return self.descriptor.segment

    def array(self) -> np.ndarray:
        """The owner's live view into the segment."""
        if self._view is None:
            raise RuntimeError(f"segment {self.name} has been unlinked")
        return self._view

    def unlink(self) -> None:
        """Release and remove the segment (idempotent)."""
        with _LOCK:
            _OWNED.pop(self.name, None)
        shm, self._shm = self._shm, None
        self._view = None
        if shm is None:
            return
        try:
            shm.close()
        except Exception:
            pass
        # Fork/spawn workers share the driver's resource tracker, and
        # their attach-side unregister (see _untrack_attachment) may
        # have dropped this name from it. Re-registering is a set-add
        # (no-op when still present) and keeps shm.unlink()'s built-in
        # unregister balanced — otherwise the tracker process spams a
        # KeyError traceback on stderr for every published segment.
        try:  # pragma: no cover - tracker internals vary across 3.10..3.13
            from multiprocessing import resource_tracker

            resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        state = "unlinked" if self._shm is None else "live"
        return f"SharedSegment({self.descriptor!r}, {state})"


def publish_array(array: Any) -> SharedSegment:
    """Copy ``array`` into a fresh named segment owned by this process.

    The copy happens exactly once, here; afterwards any number of
    workers attach zero-copy. Non-contiguous inputs are made contiguous
    first (the descriptor describes C order).
    """
    src = np.ascontiguousarray(array)
    name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEQ)}"
    # Zero-size arrays still need a 1-byte file backing the mapping.
    shm = shared_memory.SharedMemory(create=True, name=name, size=max(1, src.nbytes))
    descriptor = ArrayDescriptor(name, str(src.dtype), tuple(src.shape))
    segment = SharedSegment(descriptor, shm)
    if src.nbytes:
        segment.array()[...] = src
    with _LOCK:
        _OWNED[name] = segment
    return segment


def attach_array(descriptor: ArrayDescriptor, *, writable: bool = False) -> np.ndarray:
    """A worker-side view of a published segment (cached per process).

    Read-only by default — published datasets are immutable inputs, and
    an accidental in-place write in one worker would silently diverge
    the replicas. ``writable=True`` is for result segments whose tasks
    write *disjoint* index ranges (the caller's contract).
    """
    with _LOCK:
        shm = _ATTACHED.get(descriptor.segment)
        if shm is None:
            shm = shared_memory.SharedMemory(name=descriptor.segment)
            _untrack_attachment(shm)
            _ATTACHED[descriptor.segment] = shm
    view = np.ndarray(descriptor.shape, dtype=descriptor.dtype, buffer=shm.buf)
    view.flags.writeable = writable
    return view


def _untrack_attachment(shm: shared_memory.SharedMemory) -> None:
    """Keep a borrower's exit from unlinking the owner's segment.

    Under ``spawn`` each worker runs its own resource tracker, which
    would "clean up" (unlink!) every segment the worker ever attached
    when the worker exits — while the driver still owns it. Attachments
    are therefore unregistered immediately; the owner's create-side
    registration is the single tracked reference.
    """
    try:  # pragma: no cover - tracker internals vary across 3.10..3.13
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def release_attachments() -> None:
    """Close this process's cached attachments (views become invalid)."""
    with _LOCK:
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for shm in attached:
        try:
            shm.close()
        except Exception:
            pass


def forget_inherited_state() -> None:
    """Drop ownership/attachment records inherited through ``fork``.

    A forked pool worker shares the segment *mappings* with the driver
    (that is the point), but it must not inherit the bookkeeping: its
    exit path would otherwise unlink segments the driver still owns.
    """
    with _LOCK:
        _OWNED.clear()
        _ATTACHED.clear()


def active_segments() -> list[str]:
    """Names of segments this process currently owns (leak audit hook)."""
    with _LOCK:
        return sorted(_OWNED)


@atexit.register
def _unlink_leftovers() -> None:  # pragma: no cover - exit-path safety net
    """Last-resort sweep: a driver must never leak /dev/shm entries."""
    with _LOCK:
        leftovers = list(_OWNED.values())
    for segment in leftovers:
        segment.unlink()
