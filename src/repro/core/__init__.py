"""The Peachy Parallel Assignments catalog and evaluation harness.

The paper's "primary contribution" is the curated set of six
assignments plus the criteria they were selected under. This package
makes that catalog a first-class object:

- :mod:`repro.core.assignment` — machine-readable metadata for each
  assignment (section, title, PDC concepts, programming models, course
  context, and the modules of this library that implement it), plus the
  selection criteria (tested / adoptable / cool);
- :mod:`repro.core.speedup` — the scaling-study runner the assignments
  ask students to perform ("obtain speedup", "compare performance");
- :mod:`repro.core.executor` — the pluggable serial/thread/process
  executor backends every engine fans its local work over; the process
  backend runs a persistent zero-copy worker pool;
- :mod:`repro.core.shm` — the shared-memory data plane behind
  :meth:`Executor.publish`: named segments, array descriptors, and
  leak-audited lifecycle.
"""

from repro.core.assignment import (
    ASSIGNMENTS,
    Assignment,
    SelectionCriteria,
    get_assignment,
    list_assignments,
)
from repro.core.executor import (
    BACKENDS,
    DataRef,
    Executor,
    InlineArrayRef,
    ProcessExecutor,
    SerialExecutor,
    SharedArrayRef,
    TaskFailedError,
    ThreadExecutor,
    WorkerCrashError,
    derive_task_seed,
    get_executor,
)
from repro.core.shm import ArrayDescriptor, active_segments, attach_array, publish_array
from repro.core.speedup import run_scaling_study

__all__ = [
    "Assignment",
    "SelectionCriteria",
    "ASSIGNMENTS",
    "get_assignment",
    "list_assignments",
    "run_scaling_study",
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "derive_task_seed",
    "TaskFailedError",
    "WorkerCrashError",
    "DataRef",
    "InlineArrayRef",
    "SharedArrayRef",
    "ArrayDescriptor",
    "publish_array",
    "attach_array",
    "active_segments",
]
