"""Machine-readable catalog of the six EduHPC 2023 Peachy assignments.

Peachy Parallel Assignments are selected for being *Tested* (used with
real students), *Adoptable* (complete enough for other instructors), and
*Cool and Inspirational*. Each entry records the paper section, the PDC
concepts exercised, the programming models involved, the original course
context, and — specific to this reproduction — which subpackages
implement it and which benchmarks regenerate its evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SelectionCriteria", "Assignment", "ASSIGNMENTS", "get_assignment", "list_assignments"]


@dataclass(frozen=True)
class SelectionCriteria:
    """The three Peachy selection criteria, as recorded facts."""

    tested_with_students: bool
    adoptable: bool
    cool_and_inspirational: bool

    @property
    def is_peachy(self) -> bool:
        """All three criteria hold (a requirement for selection)."""
        return self.tested_with_students and self.adoptable and self.cool_and_inspirational


@dataclass(frozen=True)
class Assignment:
    """One catalog entry."""

    key: str
    section: int
    title: str
    concepts: tuple[str, ...]
    programming_models: tuple[str, ...]
    course_context: str
    modules: tuple[str, ...]
    benchmarks: tuple[str, ...]
    criteria: SelectionCriteria = field(
        default_factory=lambda: SelectionCriteria(True, True, True)
    )


ASSIGNMENTS: dict[str, Assignment] = {
    a.key: a
    for a in [
        Assignment(
            key="knn",
            section=2,
            title="k-Nearest Neighbor classification with MapReduce-MPI",
            concepts=(
                "MapReduce",
                "parallel IO",
                "load balancing through hashing",
                "local reductions / communication cost",
                "heap-based top-k selection",
            ),
            programming_models=("MapReduce-MPI", "MPI"),
            course_context="UNC Charlotte ITCS 3145/5145 (undergrad + MS parallel computing)",
            modules=("repro.knn", "repro.mapreduce", "repro.mpi"),
            benchmarks=("test_knn_scaling", "test_knn_mapreduce", "test_wordcount"),
        ),
        Assignment(
            key="kmeans",
            section=3,
            title="K-means clustering in OpenMP, MPI, and CUDA/OpenCL",
            concepts=(
                "race conditions",
                "critical sections",
                "atomic operations",
                "reductions",
                "collective communication",
                "load balance and cache effects",
            ),
            programming_models=("OpenMP", "MPI", "CUDA/OpenCL"),
            course_context="University of Valladolid, 3rd-year Computer Engineering elective",
            modules=("repro.kmeans", "repro.openmp", "repro.mpi"),
            benchmarks=("test_fig1_kmeans_clustering", "test_kmeans_models"),
        ),
        Assignment(
            key="pipeline",
            section=4,
            title="Program your favorite data science pipeline",
            concepts=(
                "data parallelism",
                "distributed file systems",
                "job scheduling and resource management",
                "data analysis workflow design",
            ),
            programming_models=("Spark", "MapReduce/Hadoop"),
            course_context="FSU Jena, Computational & Data Science MSc, 3-week team project",
            modules=("repro.pipeline", "repro.spark"),
            benchmarks=("test_fig2_nyc_pipeline", "test_tab1_survey"),
        ),
        Assignment(
            key="traffic",
            section=5,
            title="Parallelizing the Nagel-Schreckenberg traffic model reproducibly",
            concepts=(
                "pseudo-random number generation in parallel",
                "reproducibility",
                "fast-forwarding generator state",
                "shared-memory parallelization",
            ),
            programming_models=("OpenMP",),
            course_context="University of Toronto PHY1610 Scientific Computing for Physicists",
            modules=("repro.traffic", "repro.rng", "repro.openmp"),
            benchmarks=("test_fig3_traffic_spacetime", "test_traffic_reproducible"),
        ),
        Assignment(
            key="heat",
            section=6,
            title="1D heat equation in Chapel: forall vs coforall",
            concepts=(
                "distributed domains and Block distribution",
                "implicit vs explicit communication",
                "task creation overhead",
                "halo exchange and barriers",
            ),
            programming_models=("Chapel",),
            course_context="HPE/Chapel outreach; students with Python/Matlab background",
            modules=("repro.heat", "repro.chapel"),
            benchmarks=("test_heat_solvers",),
        ),
        Assignment(
            key="hpo",
            section=7,
            title="Hyper-parameter optimization with deep-ensemble uncertainty",
            concepts=(
                "distributing independent tasks when nodes do not divide tasks",
                "ensemble aggregation",
                "uncertainty estimation",
            ),
            programming_models=("MPI4Py",),
            course_context="CalPoly undergraduate Distributed Computing (no ML prerequisite)",
            modules=("repro.hpo", "repro.mpi"),
            benchmarks=("test_fig4_uncertainty", "test_hpo_distribution"),
        ),
    ]
}


def get_assignment(key: str) -> Assignment:
    """Catalog lookup; raises KeyError with the available keys on miss."""
    try:
        return ASSIGNMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown assignment {key!r}; available: {sorted(ASSIGNMENTS)}"
        ) from None


def list_assignments() -> list[Assignment]:
    """All assignments, ordered by paper section."""
    return sorted(ASSIGNMENTS.values(), key=lambda a: a.section)
