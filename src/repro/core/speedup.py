"""Scaling-study runner for the "obtain speedup" deliverables.

Each parallel assignment asks students to measure wall-clock time as a
function of worker count and report speedup/efficiency.
:func:`run_scaling_study` standardizes that: a factory mapping a worker
count to a no-argument callable, measured best-of-``repeats`` at every
requested count, returned as a :class:`repro.util.ScalingStudy`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.util.timing import ScalingStudy, time_call

__all__ = ["run_scaling_study"]


def run_scaling_study(
    name: str,
    worker_counts: Sequence[int],
    make_task: Callable[[int], Callable[[], Any]],
    *,
    repeats: int = 3,
    verify: Callable[[Any, Any], bool] | None = None,
) -> ScalingStudy:
    """Time ``make_task(w)()`` for every ``w`` in ``worker_counts``.

    ``verify(baseline_result, result)``, if given, is called for every
    non-baseline worker count and must return True — catching the
    classic student bug of a parallel version that is fast because it is
    wrong. Raises ``AssertionError`` on mismatch.
    """
    if not worker_counts:
        raise ValueError("worker_counts must be non-empty")
    study = ScalingStudy(name)
    baseline_result: Any = None
    first = True
    for workers in worker_counts:
        seconds, result = time_call(make_task(workers), repeats=repeats)
        study.record(workers, seconds)
        if first:
            baseline_result = result
            first = False
        elif verify is not None and not verify(baseline_result, result):
            raise AssertionError(
                f"{name}: result at {workers} workers differs from baseline"
            )
    return study
