"""Synthetic handwritten-digit data (the offline MNIST stand-in).

Each digit 0–9 has a hand-designed 8×8 template; samples are generated
by jittering a template with pixel noise, intensity scaling, and ±1
pixel shifts. The key extra over real MNIST for this assignment is
:func:`make_ambiguous_digit`: a convex blend of two digit templates —
the "confusing even for humans" input of Figure 4 whose ensemble
uncertainty must come out high.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_positive_int

__all__ = ["DIGIT_TEMPLATES", "make_digit_dataset", "make_ambiguous_digit", "render_digit"]

_TEMPLATE_STRINGS = {
    0: [
        "..####..",
        ".##..##.",
        ".#....#.",
        ".#....#.",
        ".#....#.",
        ".#....#.",
        ".##..##.",
        "..####..",
    ],
    1: [
        "...##...",
        "..###...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        "..####..",
    ],
    2: [
        "..####..",
        ".#....#.",
        "......#.",
        ".....##.",
        "...##...",
        "..#.....",
        ".#......",
        ".######.",
    ],
    3: [
        "..####..",
        ".#....#.",
        "......#.",
        "...###..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####..",
    ],
    4: [
        "....##..",
        "...###..",
        "..#.##..",
        ".#..##..",
        ".######.",
        "....##..",
        "....##..",
        "....##..",
    ],
    5: [
        ".######.",
        ".#......",
        ".#......",
        ".#####..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####..",
    ],
    6: [
        "..####..",
        ".#......",
        "#.......",
        "######..",
        "#.....#.",
        "#.....#.",
        ".#....#.",
        "..####..",
    ],
    7: [
        ".######.",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "...#....",
        "...#....",
        "...#....",
    ],
    8: [
        "..####..",
        ".#....#.",
        ".#....#.",
        "..####..",
        ".#....#.",
        ".#....#.",
        ".#....#.",
        "..####..",
    ],
    9: [
        "..####..",
        ".#....#.",
        ".#....#.",
        "..#####.",
        "......#.",
        "......#.",
        ".....#..",
        "..###...",
    ],
}


def _template(digit: int) -> np.ndarray:
    rows = _TEMPLATE_STRINGS[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])


#: (10, 8, 8) array of the clean digit templates.
DIGIT_TEMPLATES = np.stack([_template(d) for d in range(10)])


def make_digit_dataset(
    n: int,
    *,
    noise: float = 0.15,
    shift: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` flattened 8×8 samples and their labels, class-interleaved.

    Each sample: template of class ``i % 10``, optionally rolled ±1
    pixel in each axis, intensity-scaled, plus Gaussian pixel noise,
    clipped to [0, 1].
    """
    require_positive_int("n", n)
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) % 10).astype(np.int64)
    images = np.empty((n, 64))
    for i, lab in enumerate(labels):
        img = DIGIT_TEMPLATES[lab].copy()
        if shift:
            img = np.roll(img, int(rng.integers(-1, 2)), axis=0)
            img = np.roll(img, int(rng.integers(-1, 2)), axis=1)
        img = img * rng.uniform(0.7, 1.0)
        img = img + rng.normal(0.0, noise, size=img.shape)
        images[i] = np.clip(img, 0.0, 1.0).ravel()
    return images, labels


def make_ambiguous_digit(
    a: int,
    b: int,
    alpha: float = 0.5,
    *,
    noise: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """A flattened blend ``alpha·a + (1−alpha)·b`` plus noise.

    ``alpha=0.5`` between visually close digits (4 and 9, 3 and 8) is
    the Figure 4a-style input: the ensemble should classify it with
    visibly higher uncertainty than a clean sample.
    """
    if a not in _TEMPLATE_STRINGS or b not in _TEMPLATE_STRINGS:
        raise ValueError("digits must be in 0..9")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    rng = np.random.default_rng(seed)
    img = alpha * DIGIT_TEMPLATES[a] + (1.0 - alpha) * DIGIT_TEMPLATES[b]
    img = img + rng.normal(0.0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0).ravel()


def render_digit(flat: np.ndarray, *, threshold: float = 0.5) -> str:
    """ASCII rendering of a flattened 8×8 image (inspection/debugging)."""
    flat = np.asarray(flat, dtype=float)
    if flat.shape != (64,):
        raise ValueError(f"expected 64 pixels, got shape {flat.shape}")
    img = flat.reshape(8, 8)
    return "\n".join(
        "".join("#" if v >= threshold else ("+" if v >= threshold / 2 else ".") for v in row)
        for row in img
    )
