"""Deep-ensemble prediction aggregation and uncertainty.

"When an ensemble is run, the result is an aggregation of the
individual model results … each NN is trained in parallel using the
entire training set and the predictions are aggregated by averaging the
predicted probabilities" (paper §7). Uncertainty comes in two flavours:

- **class-probability spread** — the standard deviation, across
  members, of the probability assigned to the predicted class: the
  σ ≈ 0.4 of Figure 4's ambiguous '4';
- **predictive entropy** — entropy of the averaged distribution,
  capturing both member disagreement and per-member ambiguity.
"""

from __future__ import annotations

import numpy as np

from repro.hpo.nn.network import MLP

__all__ = ["DeepEnsemble"]


class DeepEnsemble:
    """A fixed set of trained classifiers queried jointly."""

    def __init__(self, models: list[MLP]) -> None:
        if not models:
            raise ValueError("an ensemble needs at least one model")
        sizes = {m.layer_sizes[0] for m in models} | {-m.layer_sizes[-1] for m in models}
        if len({m.layer_sizes[0] for m in models}) > 1:
            raise ValueError("ensemble members must share the input size")
        if len({m.layer_sizes[-1] for m in models}) > 1:
            raise ValueError("ensemble members must share the class count")
        del sizes
        self.models = list(models)

    def __len__(self) -> int:
        return len(self.models)

    def member_probas(self, x: np.ndarray) -> np.ndarray:
        """(members, rows, classes) probabilities of every member."""
        return np.stack([m.predict_proba(x) for m in self.models])

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Ensemble probabilities: the member average."""
        return self.member_probas(x).mean(axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class under the averaged distribution."""
        return np.argmax(self.predict_proba(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction classified correctly by the ensemble."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    def class_probability_std(self, x: np.ndarray) -> np.ndarray:
        """Per-row σ of the predicted class's probability across members —
        the uncertainty number Figure 4 reports."""
        member = self.member_probas(x)
        mean = member.mean(axis=0)
        winners = np.argmax(mean, axis=1)
        rows = np.arange(mean.shape[0])
        return member[:, rows, winners].std(axis=0)

    def predictive_entropy(self, x: np.ndarray) -> np.ndarray:
        """Entropy (nats) of the averaged distribution, per row."""
        probs = self.predict_proba(x)
        return -np.sum(probs * np.log(np.maximum(probs, 1e-300)), axis=1)

    def predict_with_uncertainty(self, x: np.ndarray) -> list[tuple[int, float]]:
        """(label, σ) per row — the user-facing output of the assignment.

        High σ signals "treat this prediction with suspicion"; what to do
        about it is, as the paper says, the application's decision.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        labels = self.predict(x)
        sigmas = self.class_probability_std(x)
        return [(int(l), float(s)) for l, s in zip(labels, sigmas)]
