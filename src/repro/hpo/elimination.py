"""Periodic evaluation + elimination — the §7 "interesting variation".

"Interesting variations of this assignment include adding the ability
to check the accuracy of the model at regular intervals or killing some
of the lowest performing nodes and reassign their resources" (paper §7).

That is successive halving: train all configurations a few epochs,
evaluate, kill the worst performers, and hand their training budget to
the survivors — repeated until one round remains. Both a serial and an
SPMD driver are provided; in the distributed one, surviving models are
*re-distributed* across all ranks each round, so ranks whose models were
eliminated immediately pick up survivors — the resource reassignment
the variation asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpo.ensemble import DeepEnsemble
from repro.hpo.nn.network import MLP
from repro.hpo.nn.optimizers import SGD
from repro.hpo.search import HyperParams
from repro.mpi import Communicator, run_spmd
from repro.util.validation import require_positive_int

__all__ = ["RoundRecord", "EliminationReport", "successive_halving", "run_elimination_mpi"]


@dataclass
class RoundRecord:
    """What happened in one train-evaluate-eliminate round."""

    round_index: int
    epochs_each: int
    scores: dict[int, float]          # config index -> val accuracy
    survivors: list[int]              # config indices kept
    eliminated: list[int]             # config indices killed this round


@dataclass
class EliminationReport:
    """Full tournament outcome."""

    rounds: list[RoundRecord] = field(default_factory=list)
    final_models: dict[int, MLP] = field(default_factory=dict)
    final_scores: dict[int, float] = field(default_factory=dict)

    @property
    def winner(self) -> int:
        """Config index with the best final validation accuracy."""
        if not self.final_scores:
            raise ValueError("no finished configurations")
        return max(self.final_scores, key=lambda c: (self.final_scores[c], -c))

    def ensemble(self, m: int | None = None) -> DeepEnsemble:
        """Ensemble of the top-``m`` finishers (default: all)."""
        order = sorted(self.final_scores, key=lambda c: (-self.final_scores[c], c))
        chosen = order[: m or len(order)]
        if not chosen:
            raise ValueError("no finished configurations")
        return DeepEnsemble([self.final_models[c] for c in chosen])


def _build_model(params: HyperParams, input_size: int, num_classes: int) -> MLP:
    return MLP(
        (input_size, *params.hidden_sizes, num_classes),
        activation="relu",
        seed=params.seed + hash(params.hidden_sizes) % 1000,
    )


def _train_rounds(
    model: MLP, params: HyperParams, epochs: int, train_x, train_y, shuffle_seed: int
) -> None:
    model.fit(
        train_x,
        train_y,
        epochs=epochs,
        batch_size=params.batch_size,
        optimizer=SGD(lr=params.learning_rate, momentum=params.momentum),
        shuffle_seed=shuffle_seed,
    )


def _plan(num_configs: int, total_epoch_budget: int, keep_fraction: float) -> list[tuple[int, int]]:
    """(alive_count, epochs_each) per round under a fixed total budget.

    Each round spends roughly the same share of the budget; because the
    population shrinks by ``keep_fraction``, survivors get progressively
    more epochs — the reassigned resources.
    """
    rounds: list[tuple[int, int]] = []
    alive = num_configs
    populations = []
    while alive > 1:
        populations.append(alive)
        alive = max(1, int(np.ceil(alive * keep_fraction)))
        if populations and alive == populations[-1]:
            alive -= 1
    populations.append(max(alive, 1))
    per_round_budget = max(total_epoch_budget // len(populations), 1)
    for pop in populations:
        rounds.append((pop, max(per_round_budget // pop, 1)))
    return rounds


def successive_halving(
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    total_epoch_budget: int = 48,
    keep_fraction: float = 0.5,
) -> EliminationReport:
    """Serial train-evaluate-eliminate tournament over the grid."""
    if not grid:
        raise ValueError("hyperparameter grid is empty")
    require_positive_int("total_epoch_budget", total_epoch_budget)
    if not 0.0 < keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1), got {keep_fraction}")

    input_size = train_x.shape[1]
    num_classes = int(max(train_y.max(), val_y.max())) + 1
    alive = list(range(len(grid)))
    models = {c: _build_model(grid[c], input_size, num_classes) for c in alive}
    report = EliminationReport()

    schedule = _plan(len(grid), total_epoch_budget, keep_fraction)
    for round_index, (expected_pop, epochs_each) in enumerate(schedule):
        del expected_pop  # derived from keep_fraction; alive tracks reality
        scores: dict[int, float] = {}
        for c in alive:
            _train_rounds(
                models[c], grid[c], epochs_each, train_x, train_y,
                shuffle_seed=grid[c].seed * 1000 + round_index,
            )
            scores[c] = models[c].accuracy(val_x, val_y)
        if round_index == len(schedule) - 1:
            survivors = sorted(alive)
            eliminated: list[int] = []
        else:
            keep = max(1, int(np.ceil(len(alive) * keep_fraction)))
            ranked = sorted(alive, key=lambda c: (-scores[c], c))
            survivors = sorted(ranked[:keep])
            eliminated = sorted(ranked[keep:])
        report.rounds.append(
            RoundRecord(round_index, epochs_each, scores, survivors, eliminated)
        )
        for c in eliminated:
            models.pop(c)
        alive = survivors

    report.final_models = models
    report.final_scores = {c: report.rounds[-1].scores[c] for c in alive}
    return report


def run_elimination_mpi(
    num_ranks: int,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    total_epoch_budget: int = 48,
    keep_fraction: float = 0.5,
) -> EliminationReport:
    """Distributed tournament with per-round resource reassignment.

    Each round: ranks train their share of the *currently alive*
    configurations (round-robin over the alive list — so ranks whose
    configurations died immediately receive survivors), scores are
    allgathered, every rank deterministically computes the same
    elimination, and surviving model weights are redistributed for the
    next round. Matches :func:`successive_halving` exactly (asserted in
    tests) because training is deterministic per (config, round).
    """

    def program(comm: Communicator) -> EliminationReport | None:
        input_size = train_x.shape[1]
        num_classes = int(max(train_y.max(), val_y.max())) + 1
        alive = list(range(len(grid)))
        # Every rank keeps the weight state of every alive config (tiny
        # models); only *training work* is divided. This mirrors how the
        # classroom solution shares models via gather/bcast.
        models = {c: _build_model(grid[c], input_size, num_classes) for c in alive}
        report = EliminationReport()
        schedule = _plan(len(grid), total_epoch_budget, keep_fraction)

        for round_index, (_pop, epochs_each) in enumerate(schedule):
            my_configs = [alive[i] for i in range(comm.rank, len(alive), comm.size)]
            my_payload = []
            for c in my_configs:
                _train_rounds(
                    models[c], grid[c], epochs_each, train_x, train_y,
                    shuffle_seed=grid[c].seed * 1000 + round_index,
                )
                my_payload.append((c, models[c].get_weights(), models[c].accuracy(val_x, val_y)))
            everyone = comm.allgather(my_payload)
            scores: dict[int, float] = {}
            for rank_list in everyone:
                for c, weights, acc in rank_list:
                    models[c].set_weights(weights)
                    scores[c] = acc
            if round_index == len(schedule) - 1:
                survivors = sorted(alive)
                eliminated: list[int] = []
            else:
                keep = max(1, int(np.ceil(len(alive) * keep_fraction)))
                ranked = sorted(alive, key=lambda c: (-scores[c], c))
                survivors = sorted(ranked[:keep])
                eliminated = sorted(ranked[keep:])
            report.rounds.append(
                RoundRecord(round_index, epochs_each, scores, survivors, eliminated)
            )
            for c in eliminated:
                models.pop(c)
            alive = survivors

        if comm.rank != 0:
            return None
        report.final_models = models
        report.final_scores = {c: report.rounds[-1].scores[c] for c in alive}
        return report

    if not grid:
        raise ValueError("hyperparameter grid is empty")
    return run_spmd(num_ranks, program)[0]
