"""The MPI4Py-style distributed ensemble trainer.

The students' deliverable (paper §7): "write the code to map the tasks
to the nodes using MPI4Py". The canonical solution, reproduced here on
:mod:`repro.mpi`:

1. every rank holds the shared training/validation data (broadcast);
2. rank ``r`` trains configurations ``r, r + size, r + 2·size, …`` —
   the round-robin loop that handles ``size ∤ num_tasks``;
3. outcomes are gathered to the root, re-ranked globally, and the
   top-M models form the :class:`~repro.hpo.ensemble.DeepEnsemble`.

Because :func:`repro.hpo.search.train_one` is deterministic per
configuration, the distributed search returns models bit-identical to
the serial search — verified by the tests.

The fault-tolerant variant (:func:`train_ensemble_mpi_ft`) generalizes
the round-robin ``N ∤ T`` idiom to an ``N`` that shrinks mid-run: the
root's gather detects ranks that died without delivering their outcomes
and reassigns the orphaned configurations round-robin over the
survivors, looping until every task is trained. Because each task is
deterministic wherever it runs, the result is *bit-identical* to the
fault-free serial search — rank deaths cost time, never accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.hpo.ensemble import DeepEnsemble
from repro.hpo.search import HPOutcome, HyperParams, train_one
from repro.mpi import Communicator, FaultPlan, FaultReport, RankFailedError, run_spmd
from repro.util.validation import require_positive_int

__all__ = [
    "train_ensemble_mpi",
    "run_distributed_hpo",
    "train_ensemble_mpi_ft",
    "run_distributed_hpo_ft",
]

# App-level tags for the reassignment protocol (user tags must be >= 0).
_TAG_REASSIGN = 7001
_TAG_REASSIGN_RESULT = 7002


def train_ensemble_mpi(
    comm: Communicator,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
) -> tuple[DeepEnsemble, list[HPOutcome]] | None:
    """SPMD HPO: call from every rank; root returns (ensemble, outcomes).

    ``grid`` must be identical on all ranks (bcast it first if the root
    built it). Non-root ranks return None.
    """
    if not grid:
        raise ValueError("hyperparameter grid is empty")
    # Round-robin task map: the idiom for uneven task/node division.
    my_tasks = list(range(comm.rank, len(grid), comm.size))
    my_outcomes = [
        (t, train_one(grid[t], train_x, train_y, val_x, val_y)) for t in my_tasks
    ]
    gathered = comm.gather(my_outcomes, root=0)
    if comm.rank != 0:
        return None
    by_task: dict[int, HPOutcome] = {}
    for rank_list in gathered:
        for task_id, outcome in rank_list:
            by_task[task_id] = outcome
    if len(by_task) != len(grid):
        raise AssertionError("some tasks were never trained")
    return _rank_results(by_task, top_m)


def _rank_results(by_task: dict[int, HPOutcome], top_m: int | None):
    """Globally re-rank gathered outcomes; build the top-M ensemble."""
    order = sorted(by_task, key=lambda t: (-by_task[t].val_accuracy, t))
    outcomes = [by_task[t] for t in order]
    m = top_m if top_m is not None else max(1, len(outcomes) // 2)
    require_positive_int("top_m", m)
    return DeepEnsemble([o.model for o in outcomes[:m]]), outcomes


def train_ensemble_mpi_ft(
    comm: Communicator,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
) -> tuple[DeepEnsemble, list[HPOutcome]] | None:
    """Fault-tolerant SPMD HPO: survivors absorb dead ranks' tasks.

    Run under ``run_spmd(..., on_failure="tolerate")``. Each rank trains
    its round-robin share, then the root collects with a tolerant gather:
    outcomes owned by ranks that died are *reassigned* round-robin over
    the survivors (the root included) in as many rounds as deaths demand.
    Rank 0 must survive — root death is the unrecoverable case, exactly
    as in ULFM practice.

    Returns (ensemble, outcomes) on the root, None on other ranks. The
    ensemble is bit-identical to the fault-free serial search's because
    :func:`~repro.hpo.search.train_one` is deterministic per
    configuration, wherever and whenever it runs.
    """
    if not grid:
        raise ValueError("hyperparameter grid is empty")
    my_tasks = list(range(comm.rank, len(grid), comm.size))
    my_outcomes = [
        (t, train_one(grid[t], train_x, train_y, val_x, val_y)) for t in my_tasks
    ]
    gathered, _missing = comm.gather_tolerant(my_outcomes, root=0)

    if comm.rank != 0:
        # Serve reassignment rounds until the root says done (None).
        while True:
            extra = comm.recv(source=0, tag=_TAG_REASSIGN)
            if extra is None:
                return None
            outcomes = [
                (t, train_one(grid[t], train_x, train_y, val_x, val_y)) for t in extra
            ]
            comm.send(outcomes, dest=0, tag=_TAG_REASSIGN_RESULT)

    by_task: dict[int, HPOutcome] = {}
    for rank_list in gathered:
        for task_id, outcome in rank_list or []:
            by_task[task_id] = outcome
    serving = [r for r in range(1, comm.size) if comm.is_alive(r)]
    while len(by_task) < len(grid):
        missing_tasks = [t for t in range(len(grid)) if t not in by_task]
        workers = [0] + [r for r in serving if comm.is_alive(r)]
        shares: dict[int, list[int]] = {r: [] for r in workers}
        for i, t in enumerate(missing_tasks):
            shares[workers[i % len(workers)]].append(t)
        for r, share in shares.items():
            if r != 0 and share:
                comm.send(share, dest=r, tag=_TAG_REASSIGN)
        for t in shares[0]:
            by_task[t] = train_one(grid[t], train_x, train_y, val_x, val_y)
        for r, share in shares.items():
            if r == 0 or not share:
                continue
            got = comm.recv_tolerant(source=r, tag=_TAG_REASSIGN_RESULT)
            if got is None:
                # Died mid-round; its share stays missing for the next round.
                serving.remove(r)
                continue
            for task_id, outcome in got:
                by_task[task_id] = outcome
    for r in serving:
        if comm.is_alive(r):
            comm.send(None, dest=r, tag=_TAG_REASSIGN)
    return _rank_results(by_task, top_m)


def run_distributed_hpo_ft(
    num_ranks: int,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
    faults: FaultPlan | None = None,
    timeout: float = 60.0,
) -> tuple[DeepEnsemble, list[HPOutcome], FaultReport]:
    """Launcher: fault-tolerant HPO; returns root's result plus the FaultReport."""
    results, report = run_spmd(
        num_ranks,
        train_ensemble_mpi_ft,
        grid,
        train_x,
        train_y,
        val_x,
        val_y,
        top_m=top_m,
        faults=faults,
        on_failure="tolerate",
        return_report=True,
        timeout=timeout,
    )
    if results[0] is None:
        raise RankFailedError(dict(report.failures))
    ensemble, outcomes = results[0]
    return ensemble, outcomes, report


def run_distributed_hpo(
    num_ranks: int,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
) -> tuple[DeepEnsemble, list[HPOutcome]]:
    """Launcher: distributed HPO on ``num_ranks`` ranks, root's result."""
    results = run_spmd(
        num_ranks,
        train_ensemble_mpi,
        grid,
        train_x,
        train_y,
        val_x,
        val_y,
        top_m=top_m,
    )
    return results[0]
