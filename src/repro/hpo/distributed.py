"""The MPI4Py-style distributed ensemble trainer.

The students' deliverable (paper §7): "write the code to map the tasks
to the nodes using MPI4Py". The canonical solution, reproduced here on
:mod:`repro.mpi`:

1. every rank holds the shared training/validation data (broadcast);
2. rank ``r`` trains configurations ``r, r + size, r + 2·size, …`` —
   the round-robin loop that handles ``size ∤ num_tasks``;
3. outcomes are gathered to the root, re-ranked globally, and the
   top-M models form the :class:`~repro.hpo.ensemble.DeepEnsemble`.

Because :func:`repro.hpo.search.train_one` is deterministic per
configuration, the distributed search returns models bit-identical to
the serial search — verified by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.hpo.ensemble import DeepEnsemble
from repro.hpo.search import HPOutcome, HyperParams, train_one
from repro.mpi import Communicator, run_spmd
from repro.util.validation import require_positive_int

__all__ = ["train_ensemble_mpi", "run_distributed_hpo"]


def train_ensemble_mpi(
    comm: Communicator,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
) -> tuple[DeepEnsemble, list[HPOutcome]] | None:
    """SPMD HPO: call from every rank; root returns (ensemble, outcomes).

    ``grid`` must be identical on all ranks (bcast it first if the root
    built it). Non-root ranks return None.
    """
    if not grid:
        raise ValueError("hyperparameter grid is empty")
    # Round-robin task map: the idiom for uneven task/node division.
    my_tasks = list(range(comm.rank, len(grid), comm.size))
    my_outcomes = [
        (t, train_one(grid[t], train_x, train_y, val_x, val_y)) for t in my_tasks
    ]
    gathered = comm.gather(my_outcomes, root=0)
    if comm.rank != 0:
        return None
    by_task: dict[int, HPOutcome] = {}
    for rank_list in gathered:
        for task_id, outcome in rank_list:
            by_task[task_id] = outcome
    if len(by_task) != len(grid):
        raise AssertionError("some tasks were never trained")
    order = sorted(by_task, key=lambda t: (-by_task[t].val_accuracy, t))
    outcomes = [by_task[t] for t in order]
    m = top_m if top_m is not None else max(1, len(outcomes) // 2)
    require_positive_int("top_m", m)
    return DeepEnsemble([o.model for o in outcomes[:m]]), outcomes


def run_distributed_hpo(
    num_ranks: int,
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    top_m: int | None = None,
) -> tuple[DeepEnsemble, list[HPOutcome]]:
    """Launcher: distributed HPO on ``num_ranks`` ranks, root's result."""
    results = run_spmd(
        num_ranks,
        train_ensemble_mpi,
        grid,
        train_x,
        train_y,
        val_x,
        val_y,
        top_m=top_m,
    )
    return results[0]
