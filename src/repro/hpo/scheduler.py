"""Task-to-node scheduling — the PDC concept the assignment teaches.

"The PDC concept covered is how to distribute independent tasks to
different nodes in MPI when the number of nodes is not evenly divisible
by the number of tasks" (paper §7). The canonical answer is the
round-robin ``for t in range(rank, T, size)`` loop
(:func:`repro.util.distribute_tasks`); this module adds the analysis
tools to *see* why it is good — per-node load and makespan — and the
longest-processing-time (LPT) heuristic for the variation where task
costs differ (models with more epochs/parameters take longer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.partition import distribute_tasks
from repro.util.validation import require_positive_int

__all__ = ["ScheduleReport", "simulate_schedule", "greedy_lpt_schedule"]


@dataclass
class ScheduleReport:
    """Outcome of running an assignment of task costs on N nodes."""

    assignment: list[list[int]]
    node_times: list[float]

    @property
    def makespan(self) -> float:
        """Wall-clock: the busiest node's total."""
        return max(self.node_times) if self.node_times else 0.0

    @property
    def total_work(self) -> float:
        """Sum of all task costs."""
        return sum(self.node_times)

    @property
    def imbalance(self) -> float:
        """makespan / ideal — 1.0 means perfectly balanced."""
        if not self.node_times or self.total_work == 0:
            return 1.0
        ideal = self.total_work / len(self.node_times)
        return self.makespan / ideal


def simulate_schedule(task_costs: list[float], assignment: list[list[int]]) -> ScheduleReport:
    """Evaluate an assignment (lists of task ids per node) against costs."""
    seen: set[int] = set()
    for node in assignment:
        for t in node:
            if t in seen:
                raise ValueError(f"task {t} assigned twice")
            if not 0 <= t < len(task_costs):
                raise ValueError(f"task {t} out of range")
            seen.add(t)
    if len(seen) != len(task_costs):
        raise ValueError("not every task was assigned")
    node_times = [sum(task_costs[t] for t in node) for node in assignment]
    return ScheduleReport(assignment=[list(n) for n in assignment], node_times=node_times)


def round_robin_schedule(task_costs: list[float], num_nodes: int) -> ScheduleReport:
    """The assignment's baseline: round-robin regardless of cost."""
    require_positive_int("num_nodes", num_nodes)
    return simulate_schedule(task_costs, distribute_tasks(len(task_costs), num_nodes))


def greedy_lpt_schedule(task_costs: list[float], num_nodes: int) -> ScheduleReport:
    """Longest-processing-time-first: each task goes to the least-loaded node.

    The classic 4/3-approximation for makespan; the "interesting
    variation" for heterogeneous model costs. Ties pick the lowest node
    index, so the schedule is deterministic.
    """
    require_positive_int("num_nodes", num_nodes)
    order = sorted(range(len(task_costs)), key=lambda t: (-task_costs[t], t))
    assignment: list[list[int]] = [[] for _ in range(num_nodes)]
    loads = [0.0] * num_nodes
    for t in order:
        target = min(range(num_nodes), key=lambda n: (loads[n], n))
        assignment[target].append(t)
        loads[target] += task_costs[t]
    return simulate_schedule(task_costs, assignment)


__all__.append("round_robin_schedule")
