"""Elementwise activations with their derivatives."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Activation", "ACTIVATIONS"]


@dataclass(frozen=True)
class Activation:
    """A differentiable elementwise nonlinearity.

    ``backward`` receives the *forward output* (not the input) — every
    activation here has a derivative expressible in its output, which
    saves caching the pre-activation.
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    backward: Callable[[np.ndarray], np.ndarray]  # d(out)/d(in) given out


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(out: np.ndarray) -> np.ndarray:
    return (out > 0.0).astype(out.dtype)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(out: np.ndarray) -> np.ndarray:
    return 1.0 - out * out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability on large |x|.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(out: np.ndarray) -> np.ndarray:
    return out * (1.0 - out)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _identity_grad(out: np.ndarray) -> np.ndarray:
    return np.ones_like(out)


#: Registry of available activations by name.
ACTIVATIONS: dict[str, Activation] = {
    "relu": Activation("relu", _relu, _relu_grad),
    "tanh": Activation("tanh", _tanh, _tanh_grad),
    "sigmoid": Activation("sigmoid", _sigmoid, _sigmoid_grad),
    "identity": Activation("identity", _identity, _identity_grad),
}
