"""Softmax and the fused softmax cross-entropy loss."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy", "one_hot"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax: probabilities summing to 1 per row."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """(n, num_classes) indicator matrix for integer labels."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(f"labels must be in [0, {num_classes}), got range "
                         f"[{labels.min()}, {labels.max()}]")
    out = np.zeros((labels.shape[0], num_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of softmax(logits) vs integer labels, and the
    gradient w.r.t. the logits.

    Fusing the two keeps the gradient the famously simple
    ``(probs − onehot) / n`` and avoids the log-of-small-number hazard.
    """
    logits = np.asarray(logits, dtype=float)
    labels = np.asarray(labels)
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels must be shape ({n},), got {labels.shape}")
    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.maximum(picked, 1e-300)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
