"""Parameter-update rules: SGD with momentum, and Adam."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base: subclasses update parameter arrays in place from gradients."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """In-place update; velocity slots keyed by parameter identity."""
        for p, g in zip(params, grads):
            if self.momentum:
                v = self._velocity.setdefault(id(p), np.zeros_like(p))
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """In-place Adam update with per-parameter first/second moments."""
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g in zip(params, grads):
            m = self._m.setdefault(id(p), np.zeros_like(p))
            v = self._v.setdefault(id(p), np.zeros_like(p))
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
