"""The fully-connected classifier (the assignment's starter model)."""

from __future__ import annotations

import numpy as np

from repro.hpo.nn.layers import Dense
from repro.hpo.nn.losses import softmax, softmax_cross_entropy
from repro.hpo.nn.optimizers import SGD, Optimizer

__all__ = ["MLP"]


class MLP:
    """Multi-layer perceptron for classification.

    ``layer_sizes`` includes input and output sizes, e.g. ``(64, 32, 10)``
    for 8×8 digits → one hidden layer of 32 → 10 classes. Hidden layers
    use ``activation``; the output layer is linear (softmax lives in the
    loss).

    Given the same sizes, seed, data, and optimizer settings, training is
    fully deterministic — the distributed driver relies on that.
    """

    def __init__(
        self, layer_sizes: tuple[int, ...], activation: str = "relu", seed: int = 0
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.layers: list[Dense] = []
        for i in range(len(layer_sizes) - 1):
            act = activation if i < len(layer_sizes) - 2 else "identity"
            self.layers.append(Dense(layer_sizes[i], layer_sizes[i + 1], act, rng))
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def logits(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        """Raw class scores."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.layer_sizes[0]:
            raise ValueError(
                f"inputs must be (n, {self.layer_sizes[0]}), got {x.shape}"
            )
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities per row."""
        return softmax(self.logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.logits(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of rows classified correctly."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 10,
        batch_size: int = 32,
        optimizer: Optimizer | None = None,
        shuffle_seed: int | None = None,
        monitor=None,
    ) -> "MLP":
        """Mini-batch training with softmax cross-entropy.

        Shuffling uses ``shuffle_seed`` (default: the model's seed) so
        runs are repeatable. Appends per-epoch mean loss to
        ``loss_history``. ``monitor(epoch_index, model)``, if given, is
        called after every epoch — the hook behind the §7 variation of
        "checking the accuracy of the model at regular intervals".
        Returns self.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if y.shape != (x.shape[0],):
            raise ValueError("y must be one label per row of x")
        opt = optimizer or SGD(lr=0.1, momentum=0.9)
        shuffle_rng = np.random.default_rng(
            self.seed if shuffle_seed is None else shuffle_seed
        )
        n = x.shape[0]
        for epoch in range(epochs):
            order = shuffle_rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for lo in range(0, n, batch_size):
                idx = order[lo : lo + batch_size]
                logits = self.logits(x[idx], train=True)
                loss, grad = softmax_cross_entropy(logits, y[idx])
                for layer in reversed(self.layers):
                    grad = layer.backward(grad)
                params = [p for layer in self.layers for p in layer.parameters()]
                grads = [g for layer in self.layers for g in layer.gradients()]
                opt.step(params, grads)
                epoch_loss += loss
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
            if monitor is not None:
                monitor(epoch, self)
        return self

    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameter arrays (for shipping across ranks)."""
        return [p.copy() for layer in self.layers for p in layer.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        params = [p for layer in self.layers for p in layer.parameters()]
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w
