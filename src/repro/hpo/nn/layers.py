"""Dense (fully-connected) layers."""

from __future__ import annotations

import numpy as np

from repro.hpo.nn.activations import ACTIVATIONS, Activation

__all__ = ["Dense"]


class Dense:
    """``y = act(x @ W + b)`` with cached activations for backprop.

    Weights use He initialization scaled for the fan-in, drawn from the
    provided generator so construction order fully determines the
    parameters.
    """

    def __init__(
        self, in_features: int, out_features: int, activation: str, rng: np.random.Generator
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be >= 1")
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; available: {sorted(ACTIVATIONS)}"
            )
        self.activation: Activation = ACTIVATIONS[activation]
        scale = np.sqrt(2.0 / in_features)
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = False) -> np.ndarray:
        """Layer output; caches inputs when ``train`` for the backward pass."""
        out = self.activation.forward(x @ self.W + self.b)
        if train:
            self._x = x
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(out), stores dL/dW and dL/db, returns dL/d(x)."""
        if self._x is None or self._out is None:
            raise RuntimeError("backward() requires a prior forward(train=True)")
        grad_pre = grad_out * self.activation.backward(self._out)
        self.dW = self._x.T @ grad_pre
        self.db = grad_pre.sum(axis=0)
        return grad_pre @ self.W.T

    def parameters(self) -> list[np.ndarray]:
        """Mutable parameter arrays, in a fixed order."""
        return [self.W, self.b]

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters` order."""
        return [self.dW, self.db]
