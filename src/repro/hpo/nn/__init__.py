"""A small, deterministic, pure-numpy neural-network library.

Exactly what the assignment's provided starter code is: "a simple Fully
Connected Neural Network that classifies the MNIST handwritten digits"
(paper §7) — dense layers, ReLU/tanh activations, softmax cross-entropy,
mini-batch SGD (with momentum) or Adam. Everything is seeded, so a model
trained with the same hyper-parameters and seed is bit-identical no
matter which node trained it — the property that makes the distributed
ensemble verifiable.
"""

from repro.hpo.nn.activations import ACTIVATIONS, Activation
from repro.hpo.nn.layers import Dense
from repro.hpo.nn.losses import softmax, softmax_cross_entropy
from repro.hpo.nn.network import MLP
from repro.hpo.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "Activation",
    "ACTIVATIONS",
    "Dense",
    "softmax",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "Optimizer",
    "MLP",
]
