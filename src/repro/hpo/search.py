"""Hyper-parameter search whose by-products form the ensemble.

"We generate these intermediate models while performing Hyper-parameter
Optimization (HPO) so uncertainty evaluation is essentially free (in
execution time). We use the best-performing models to identify both the
uncertainty and optimal hyperparameters" (paper §7).

:func:`hyperparameter_grid` enumerates configurations;
:func:`train_one` trains and scores one of them (this is the unit of
distributed work); :func:`run_hpo_serial` runs the whole search and
returns the outcomes sorted best-first, from which the top-M ensemble is
assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.hpo.ensemble import DeepEnsemble
from repro.hpo.nn.network import MLP
from repro.hpo.nn.optimizers import SGD
from repro.trace.tracer import get_tracer

__all__ = [
    "HyperParams",
    "HPOutcome",
    "hyperparameter_grid",
    "train_one",
    "run_hpo_serial",
    "run_hpo_executor",
    "ensemble_of_top",
]


@dataclass(frozen=True)
class HyperParams:
    """One configuration of the search space."""

    hidden_sizes: tuple[int, ...] = (32,)
    learning_rate: float = 0.1
    momentum: float = 0.9
    epochs: int = 10
    batch_size: int = 32
    seed: int = 0

    def describe(self) -> str:
        """Compact human-readable tag."""
        hidden = "x".join(str(h) for h in self.hidden_sizes)
        return f"h{hidden}-lr{self.learning_rate}-e{self.epochs}-s{self.seed}"


@dataclass
class HPOutcome:
    """A trained configuration with its validation score."""

    params: HyperParams
    model: MLP
    val_accuracy: float
    train_accuracy: float
    extra: dict = field(default_factory=dict)


def hyperparameter_grid(
    hidden_options: list[tuple[int, ...]] = [(16,), (32,), (32, 16)],
    lr_options: list[float] = [0.05, 0.1],
    epochs_options: list[int] = [8],
    *,
    seeds: list[int] = [0],
    batch_size: int = 32,
    momentum: float = 0.9,
) -> list[HyperParams]:
    """The Cartesian grid of configurations (the independent tasks)."""
    grid = [
        HyperParams(
            hidden_sizes=h,
            learning_rate=lr,
            momentum=momentum,
            epochs=e,
            batch_size=batch_size,
            seed=s,
        )
        for h, lr, e, s in product(hidden_options, lr_options, epochs_options, seeds)
    ]
    if not grid:
        raise ValueError("hyperparameter grid is empty")
    return grid


def train_one(
    params: HyperParams,
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    input_size: int | None = None,
    num_classes: int | None = None,
) -> HPOutcome:
    """Train and score one configuration — the distributable task unit.

    Fully deterministic in ``params``: the same configuration yields the
    same model no matter where (which rank/node) it runs.
    """
    input_size = input_size or train_x.shape[1]
    num_classes = num_classes or int(max(train_y.max(), val_y.max())) + 1
    tracer = get_tracer()
    with tracer.span("hpo.trial", category="hpo", config=params.describe()) as sp:
        model = MLP(
            (input_size, *params.hidden_sizes, num_classes),
            activation="relu",
            seed=params.seed + hash(params.hidden_sizes) % 1000,
        )
        model.fit(
            train_x,
            train_y,
            epochs=params.epochs,
            batch_size=params.batch_size,
            optimizer=SGD(lr=params.learning_rate, momentum=params.momentum),
            shuffle_seed=params.seed,
        )
        outcome = HPOutcome(
            params=params,
            model=model,
            val_accuracy=model.accuracy(val_x, val_y),
            train_accuracy=model.accuracy(train_x, train_y),
        )
    if tracer.enabled:
        tracer.metrics.histogram("hpo.trial_seconds").observe(sp.duration)
        tracer.metrics.counter("hpo.trials").inc()
    return outcome


def run_hpo_serial(
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
) -> list[HPOutcome]:
    """Train every configuration in order; outcomes sorted best-first.

    Ties break toward the earlier grid entry, so the ranking is total
    and reproducible.
    """
    outcomes = [
        train_one(p, train_x, train_y, val_x, val_y) for p in grid
    ]
    order = sorted(
        range(len(outcomes)), key=lambda i: (-outcomes[i].val_accuracy, i)
    )
    return [outcomes[i] for i in order]


def _train_task(
    refs: tuple,
    input_size: int,
    num_classes: int,
    _index: int,
    params: HyperParams,
) -> HPOutcome:
    """One pooled trial: resolve the published datasets, train, score.

    Module-level (bound with :func:`functools.partial`) so the payload
    pickles and the process backend keeps its persistent pool — only
    the dataset *descriptors* and the parameter grid travel with the
    job, not the arrays.
    """
    train_x, train_y, val_x, val_y = (np.array(r.array()) for r in refs)
    return train_one(
        params, train_x, train_y, val_x, val_y,
        input_size=input_size, num_classes=num_classes,
    )


def run_hpo_executor(
    grid: list[HyperParams],
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    backend: "str | object" = "thread",
    num_workers: int = 4,
) -> list[HPOutcome]:
    """The trial farm over an executor backend: :func:`run_hpo_serial`'s
    exact results, trained on local serial/thread/process workers.

    Each trial is already deterministic in its ``params`` (it trains the
    same model wherever it runs), and ranking keys on ``(-accuracy,
    grid_index)``, so the returned ordering is bit-identical across
    backends. The process backend gives the single-machine analogue of
    the assignment's MPI task farm — real CPU parallelism for the
    GIL-bound training loops, with the datasets published once through
    shared memory instead of pickled per trial. ``backend`` also
    accepts a live :class:`~repro.core.executor.Executor` (then the
    caller's to close).
    """
    import functools

    from repro.core.executor import Executor, get_executor

    train_x = np.asarray(train_x)
    train_y = np.asarray(train_y)
    val_x = np.asarray(val_x)
    val_y = np.asarray(val_y)
    input_size = train_x.shape[1]
    num_classes = int(max(train_y.max(), val_y.max())) + 1
    owns_executor = not isinstance(backend, Executor)
    executor = get_executor(backend, num_workers)
    refs = []
    try:
        refs = tuple(executor.publish(a) for a in (train_x, train_y, val_x, val_y))
        outcomes = executor.map(
            functools.partial(_train_task, refs, input_size, num_classes), list(grid)
        )
    finally:
        for ref in refs:
            executor.unpublish(ref)
        if owns_executor:
            executor.close()
    order = sorted(
        range(len(outcomes)), key=lambda i: (-outcomes[i].val_accuracy, i)
    )
    return [outcomes[i] for i in order]


def ensemble_of_top(outcomes: list[HPOutcome], m: int) -> DeepEnsemble:
    """The deep ensemble of the ``m`` best-scoring models."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not outcomes:
        raise ValueError("no outcomes to build an ensemble from")
    return DeepEnsemble([o.model for o in outcomes[:m]])
