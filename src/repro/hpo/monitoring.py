"""Periodic accuracy monitoring — the other half of the §7 variation.

"Interesting variations … include adding the ability to check the
accuracy of the model at regular intervals." :class:`AccuracyMonitor`
plugs into :meth:`MLP.fit`'s ``monitor`` hook, records a learning curve,
and can stop training early when validation accuracy stalls — the
mechanism the elimination tournament builds on, here exposed for a
single model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpo.nn.network import MLP
from repro.trace.tracer import get_tracer
from repro.util.validation import require_positive_int

__all__ = ["AccuracyMonitor", "StopTraining", "learning_curve"]


class StopTraining(Exception):
    """Raised by a monitor to end training early (caught by the helpers)."""


@dataclass
class AccuracyMonitor:
    """Evaluates held-out accuracy every ``interval`` epochs.

    With ``patience`` set, raises :class:`StopTraining` once the best
    validation accuracy has not improved for that many *checks* — early
    stopping, the classic "reassign the resources" precursor.
    """

    val_x: np.ndarray
    val_y: np.ndarray
    interval: int = 1
    patience: int | None = None
    history: list[tuple[int, float]] = field(default_factory=list)
    best_accuracy: float = -1.0
    best_epoch: int = -1
    _checks_since_best: int = 0

    def __post_init__(self) -> None:
        require_positive_int("interval", self.interval)
        if self.patience is not None:
            require_positive_int("patience", self.patience)

    def __call__(self, epoch: int, model: MLP) -> None:
        """The fit() hook: record (and possibly stop) at interval epochs."""
        if (epoch + 1) % self.interval:
            return
        accuracy = model.accuracy(self.val_x, self.val_y)
        self.history.append((epoch, accuracy))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "hpo.accuracy_check", category="hpo", epoch=epoch, accuracy=accuracy
            )
        if accuracy > self.best_accuracy:
            self.best_accuracy = accuracy
            self.best_epoch = epoch
            self._checks_since_best = 0
        else:
            self._checks_since_best += 1
            if self.patience is not None and self._checks_since_best >= self.patience:
                if tracer.enabled:
                    tracer.instant(
                        "hpo.early_stop",
                        category="hpo",
                        epoch=epoch,
                        best_epoch=self.best_epoch,
                    )
                raise StopTraining(
                    f"no improvement for {self.patience} checks "
                    f"(best {self.best_accuracy:.3f} at epoch {self.best_epoch})"
                )


def learning_curve(
    model: MLP,
    train_x: np.ndarray,
    train_y: np.ndarray,
    val_x: np.ndarray,
    val_y: np.ndarray,
    *,
    epochs: int,
    interval: int = 1,
    patience: int | None = None,
    **fit_kwargs,
) -> list[tuple[int, float]]:
    """Train with periodic validation; returns the (epoch, accuracy) curve.

    Early stopping (``patience``) is absorbed here — the model keeps the
    weights it had when training stopped.
    """
    monitor = AccuracyMonitor(val_x, val_y, interval=interval, patience=patience)
    try:
        model.fit(train_x, train_y, epochs=epochs, monitor=monitor, **fit_kwargs)
    except StopTraining:
        pass
    return monitor.history
