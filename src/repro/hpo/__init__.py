"""Hyper-parameter optimization with deep-ensemble uncertainty — §7.

The assignment: train an ensemble of neural networks (the intermediate
models of a hyper-parameter search) on MNIST digits, distribute the
independent training tasks over MPI nodes — "when the number of nodes
is not evenly divisible by the number of tasks" — and aggregate the
ensemble's predictions so the classifier reports *uncertainty* along
with its answer (Figure 4).

Offline substitutions (DESIGN.md): a pure-numpy MLP replaces the
framework NN, and a synthetic digit generator replaces MNIST, with a
controllable "ambiguity" blend that provably raises predictive
uncertainty.

- :mod:`repro.hpo.nn` — dense layers, activations, softmax
  cross-entropy, SGD/Adam, the :class:`~repro.hpo.nn.MLP`;
- :mod:`repro.hpo.digits` — the synthetic digit dataset + ambiguous
  blends;
- :mod:`repro.hpo.ensemble` — prediction averaging, per-class standard
  deviation, predictive entropy;
- :mod:`repro.hpo.search` — the hyper-parameter grid and scoring;
- :mod:`repro.hpo.scheduler` — task→node distribution and makespan
  analysis;
- :mod:`repro.hpo.distributed` — the MPI4Py-style SPMD driver that
  trains the ensemble in parallel and aggregates on the root.
"""

from repro.hpo.digits import make_ambiguous_digit, make_digit_dataset, render_digit
from repro.hpo.distributed import (
    run_distributed_hpo,
    run_distributed_hpo_ft,
    train_ensemble_mpi,
    train_ensemble_mpi_ft,
)
from repro.hpo.elimination import (
    EliminationReport,
    run_elimination_mpi,
    successive_halving,
)
from repro.hpo.ensemble import DeepEnsemble
from repro.hpo.monitoring import AccuracyMonitor, StopTraining, learning_curve
from repro.hpo.nn import MLP
from repro.hpo.scheduler import ScheduleReport, greedy_lpt_schedule, simulate_schedule
from repro.hpo.search import (
    HyperParams,
    HPOutcome,
    hyperparameter_grid,
    run_hpo_executor,
    run_hpo_serial,
)

__all__ = [
    "MLP",
    "make_digit_dataset",
    "make_ambiguous_digit",
    "render_digit",
    "DeepEnsemble",
    "HyperParams",
    "HPOutcome",
    "hyperparameter_grid",
    "run_hpo_serial",
    "run_hpo_executor",
    "ScheduleReport",
    "simulate_schedule",
    "greedy_lpt_schedule",
    "train_ensemble_mpi",
    "run_distributed_hpo",
    "train_ensemble_mpi_ft",
    "run_distributed_hpo_ft",
    "successive_halving",
    "run_elimination_mpi",
    "EliminationReport",
    "AccuracyMonitor",
    "StopTraining",
    "learning_curve",
]
