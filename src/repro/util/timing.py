"""Wall-clock timing and scaling-study bookkeeping.

Per the optimization workflow in the course material this reproduction
follows ("no optimization without measuring"), every performance claim
in the benchmark harness is backed by a measured wall-clock time. The
:class:`ScalingStudy` record mirrors what the assignments ask students
to produce: times per worker count, plus derived speedup and efficiency
columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Timer", "time_call", "ScalingStudy"]


class Timer:
    """Context-manager stopwatch measuring wall-clock seconds.

    One instance is safely reusable (sequential ``with`` blocks) and
    nestable (re-entering while already running): starts are kept on a
    stack, and ``elapsed`` always reports the most recently *completed*
    interval. Exiting a timer that was never entered raises
    ``RuntimeError`` instead of dying on an assert.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._starts: list[float] = []
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._starts:
            raise RuntimeError("Timer.__exit__ without a matching __enter__")
        self.elapsed = time.perf_counter() - self._starts.pop()


def time_call(fn: Callable[..., Any], *args: Any, repeats: int = 1, **kwargs: Any) -> tuple[float, Any]:
    """Run ``fn`` ``repeats`` times; return (best wall-clock seconds, last result).

    Taking the best of several repeats filters scheduler noise, the same
    reason ``timeit`` reports a minimum.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


@dataclass
class ScalingStudy:
    """Accumulates (workers, seconds) measurements for a strong-scaling study.

    Speedup is computed against the 1-worker time when present, else
    against the smallest measured worker count.
    """

    name: str
    measurements: dict[int, float] = field(default_factory=dict)

    def record(self, workers: int, seconds: float) -> None:
        """Store the time for a worker count (keeps the minimum of repeats)."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        prev = self.measurements.get(workers)
        self.measurements[workers] = seconds if prev is None else min(prev, seconds)

    @property
    def baseline_workers(self) -> int:
        """Worker count used as the speedup baseline."""
        if not self.measurements:
            raise ValueError("no measurements recorded")
        return 1 if 1 in self.measurements else min(self.measurements)

    def speedup(self, workers: int) -> float:
        """Baseline time divided by the time at ``workers``."""
        base = self.measurements[self.baseline_workers]
        t = self.measurements.get(workers)
        if t is None:
            raise ValueError(
                f"no measurement recorded for {workers} workers "
                f"(recorded: {sorted(self.measurements)})"
            )
        return float("inf") if t == 0 else base / t

    def efficiency(self, workers: int) -> float:
        """Speedup divided by the worker-count ratio to baseline."""
        return self.speedup(workers) / (workers / self.baseline_workers)

    def rows(self) -> list[tuple[int, float, float, float]]:
        """Sorted (workers, seconds, speedup, efficiency) rows."""
        return [
            (w, self.measurements[w], self.speedup(w), self.efficiency(w))
            for w in sorted(self.measurements)
        ]

    def format_table(self) -> str:
        """Human-readable scaling table, as the assignments ask students to report."""
        lines = [f"{self.name}", f"{'workers':>8} {'seconds':>10} {'speedup':>8} {'eff':>6}"]
        for w, secs, sp, eff in self.rows():
            lines.append(f"{w:>8d} {secs:>10.4f} {sp:>8.2f} {eff:>6.2f}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict: name, baseline, and the full scaling rows.

        The machine-readable counterpart of :meth:`format_table`, used by
        the benchmark harness's ``BENCH_<name>.json`` reports.
        """
        return {
            "name": self.name,
            "baseline_workers": self.baseline_workers,
            "rows": [
                {"workers": w, "seconds": secs, "speedup": sp, "efficiency": eff}
                for w, secs, sp, eff in self.rows()
            ],
        }
