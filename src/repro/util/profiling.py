"""Profiling helpers — "no optimization without measuring".

The scientific-Python optimization workflow the courses teach starts
with a profile, not a guess. :func:`profile_call` wraps ``cProfile``
around one call and returns both the result and a structured list of
the hottest functions, so examples and notebooks can *show* where the
time goes before discussing how to move it.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.validation import require_positive_int

__all__ = ["HotSpot", "ProfileReport", "profile_call"]


@dataclass(frozen=True)
class HotSpot:
    """One row of the profile: a function and its costs."""

    location: str       # "file:line(function)"
    calls: int
    total_time: float   # time inside the function itself
    cumulative: float   # including callees


@dataclass
class ProfileReport:
    """Result + the profile that produced it."""

    result: Any
    hotspots: list[HotSpot]
    text: str

    @property
    def hottest(self) -> HotSpot:
        """The function with the largest self-time."""
        if not self.hotspots:
            raise ValueError("empty profile")
        return self.hotspots[0]


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 10, **kwargs: Any) -> ProfileReport:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns a :class:`ProfileReport` with the call's result, the ``top``
    functions by self-time, and the classic pstats text table.
    """
    require_positive_int("top", top)
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(top)

    hotspots: list[HotSpot] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: -kv[1][2]
    )[:top]:
        filename, line, name = func
        hotspots.append(
            HotSpot(
                location=f"{filename}:{line}({name})",
                calls=nc,
                total_time=tt,
                cumulative=ct,
            )
        )
    return ProfileReport(result=result, hotspots=hotspots, text=stream.getvalue())
