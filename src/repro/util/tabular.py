"""Minimal CSV handling for labelled point data.

The kNN assignment's "early programming course" variant asks students to
"write the whole application: parsing the database and queries from a
CSV file" (paper §2). This module provides that file format: one row per
point, ``d`` feature columns followed by an optional label column.

Only the tiny subset of CSV needed here is implemented (no quoting —
the data is purely numeric plus simple label tokens), which keeps the
parser trivially auditable for classroom use.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

__all__ = [
    "write_points_csv",
    "read_points_csv",
    "points_to_csv_text",
    "points_from_csv_text",
]


def points_to_csv_text(points: np.ndarray, labels: np.ndarray | None = None) -> str:
    """Serialize an (n, d) float array (and optional (n,) int labels) to CSV text."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape != (points.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match {points.shape[0]} points"
            )
    out = io.StringIO()
    for i, row in enumerate(points):
        cols = [repr(float(v)) for v in row]
        if labels is not None:
            cols.append(str(int(labels[i])))
        out.write(",".join(cols))
        out.write("\n")
    return out.getvalue()


def points_from_csv_text(
    text: str, *, labelled: bool
) -> tuple[np.ndarray, np.ndarray | None]:
    """Parse CSV text back into (points, labels-or-None).

    With ``labelled=True`` the final column of every row is an integer
    class label; otherwise all columns are features.
    """
    rows: list[list[float]] = []
    labels: list[int] = []
    width: int | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        cols = line.split(",")
        if width is None:
            width = len(cols)
        elif len(cols) != width:
            raise ValueError(f"line {lineno}: expected {width} columns, got {len(cols)}")
        if labelled:
            if len(cols) < 2:
                raise ValueError(f"line {lineno}: labelled rows need >= 2 columns")
            labels.append(int(cols[-1]))
            cols = cols[:-1]
        rows.append([float(c) for c in cols])
    if not rows:
        dim = 0 if width is None else (width - 1 if labelled else width)
        empty = np.empty((0, max(dim, 0)), dtype=float)
        return empty, (np.empty(0, dtype=np.int64) if labelled else None)
    points = np.asarray(rows, dtype=float)
    return points, (np.asarray(labels, dtype=np.int64) if labelled else None)


def write_points_csv(
    path: str | Path, points: np.ndarray, labels: np.ndarray | None = None
) -> None:
    """Write points (and optional labels) to a CSV file."""
    Path(path).write_text(points_to_csv_text(points, labels))


def read_points_csv(
    path: str | Path, *, labelled: bool
) -> tuple[np.ndarray, np.ndarray | None]:
    """Read a CSV file written by :func:`write_points_csv`."""
    return points_from_csv_text(Path(path).read_text(), labelled=labelled)
