"""Index-space partitioning helpers.

Every distributed assignment in the paper needs to split an index range
``0..n`` over ``p`` workers:

- the k-means MPI version distributes the point array (paper §3),
- the heat-equation solver block-distributes the 1-D domain (paper §6),
- the HPO assignment distributes ``T`` independent training tasks over
  ``N`` nodes *"when the number of nodes is not evenly divisible by the
  number of tasks"* (paper §7).

The block layout used here matches Chapel's ``Block`` distribution and
MPI's conventional contiguous decomposition: the first ``n % p`` workers
receive one extra element, so sizes differ by at most one.
"""

from __future__ import annotations

from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "block_bounds",
    "block_size",
    "block_partition",
    "cyclic_partition",
    "owner_of",
    "distribute_tasks",
]


def block_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """Half-open bounds ``[lo, hi)`` of block ``index`` of ``0..n`` split ``parts`` ways.

    The first ``n % parts`` blocks are one element larger, so
    ``hi - lo`` is either ``n // parts`` or ``n // parts + 1`` and the
    blocks tile ``range(n)`` exactly.

    >>> [block_bounds(10, 3, i) for i in range(3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    require_nonnegative_int("n", n)
    require_positive_int("parts", parts)
    if not 0 <= index < parts:
        raise IndexError(f"block index {index} out of range for {parts} parts")
    base, extra = divmod(n, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def block_size(n: int, parts: int, index: int) -> int:
    """Number of elements in block ``index`` (see :func:`block_bounds`)."""
    lo, hi = block_bounds(n, parts, index)
    return hi - lo


def block_partition(n: int, parts: int) -> list[range]:
    """All ``parts`` contiguous blocks of ``range(n)`` as a list of ranges.

    >>> block_partition(7, 3)
    [range(0, 3), range(3, 5), range(5, 7)]
    """
    return [range(*block_bounds(n, parts, i)) for i in range(parts)]


def cyclic_partition(n: int, parts: int) -> list[range]:
    """Round-robin (cyclic) partition of ``range(n)`` into ``parts`` strided ranges.

    Element ``i`` is owned by worker ``i % parts`` — the layout used by
    leapfrogged random-number streams (paper §5) and by MPI examples that
    stride over a global index space.

    >>> [list(r) for r in cyclic_partition(7, 3)]
    [[0, 3, 6], [1, 4], [2, 5]]
    """
    require_nonnegative_int("n", n)
    require_positive_int("parts", parts)
    return [range(i, n, parts) for i in range(parts)]


def owner_of(n: int, parts: int, element: int) -> int:
    """Owner of ``element`` under the block layout of :func:`block_partition`.

    Inverse of :func:`block_bounds`: ``lo <= element < hi`` for the
    returned block. Computed in O(1).
    """
    require_nonnegative_int("n", n)
    require_positive_int("parts", parts)
    if not 0 <= element < n:
        raise IndexError(f"element {element} out of range for n={n}")
    base, extra = divmod(n, parts)
    # The first `extra` blocks have size base+1 and cover [0, extra*(base+1)).
    boundary = extra * (base + 1)
    if element < boundary:
        return element // (base + 1)
    if base == 0:
        # n < parts: all elements live in the first `extra` oversized blocks.
        raise AssertionError("unreachable: element beyond boundary with base 0")
    return extra + (element - boundary) // base


def distribute_tasks(num_tasks: int, num_nodes: int) -> list[list[int]]:
    """Assign ``num_tasks`` independent task ids to ``num_nodes`` workers.

    This is the PDC concept the HPO assignment teaches (paper §7):
    distributing independent ensemble-training tasks over nodes when the
    counts do not divide evenly. The assignment is round-robin, which
    guarantees per-node loads differ by at most one task and that node
    ``r`` receives tasks ``r, r + N, r + 2N, …`` — the natural pattern
    for an MPI rank loop ``for t in range(rank, T, size)``.

    >>> distribute_tasks(10, 4)
    [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]
    """
    require_nonnegative_int("num_tasks", num_tasks)
    require_positive_int("num_nodes", num_nodes)
    return [list(r) for r in cyclic_partition(num_tasks, num_nodes)]
