"""Argument-validation helpers shared by the public APIs.

All raise ``ValueError``/``TypeError`` with consistent, parameter-named
messages so user errors surface at the API boundary rather than deep in
a worker thread (where tracebacks are much harder to read).
"""

from __future__ import annotations

import numbers

__all__ = [
    "require_positive_int",
    "require_nonnegative_int",
    "require_probability",
    "require_in_range",
]


def require_positive_int(name: str, value: object) -> int:
    """Return ``value`` if it is an integer >= 1, else raise."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def require_nonnegative_int(name: str, value: object) -> int:
    """Return ``value`` if it is an integer >= 0, else raise."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def require_probability(name: str, value: object) -> float:
    """Return ``value`` if it is a real number in [0, 1], else raise."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def require_in_range(
    name: str, value: object, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Return ``value`` if it lies in ``[lo, hi]`` (or ``(lo, hi)``), else raise."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {brackets[0]}{lo}, {hi}{brackets[1]}, got {value}"
        )
    return value
