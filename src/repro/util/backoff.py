"""Deterministic retry backoff: exponential growth plus seeded jitter.

Every recovery path in the reproduction waits between attempts — the
SPMD runtime before respawning a dead rank, the Spark scheduler before
re-running a failed task, the serve tier before re-admitting a bounced
submission. They all used to hand-roll ``base * 2**attempt``; this
module is the one shared schedule, with the same reproducibility
contract as the fault plans it pairs with: a
:class:`BackoffPolicy` is a *pure function* of ``(attempt, seed)``, so
a retry schedule is bit-identical on every run — jitter included,
drawn from the same :mod:`repro.rng.lcg` machinery as
:class:`~repro.mpi.faults.FaultPlan` rather than a global RNG.

Real systems jitter their backoff to de-correlate competing retriers
(the "thundering herd" fix); a *seeded* jitter keeps that behaviour
while preserving the property the whole repo is built around: the run
is replayable. With ``jitter=0.0`` (the default) the schedule is the
classic deterministic exponential ``base * factor**attempt``, capped
at ``cap`` — exactly what ``run_spmd`` respawn and the Spark task
retry path always did, so the refactor onto this helper changes no
observable timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.rng.lcg import KNUTH_LCG, LinearCongruential
from repro.util.validation import require_nonnegative_int

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """An immutable, seeded retry-delay schedule.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is::

        raw = min(base * factor**attempt, cap)        # cap=None: uncapped
        delay = raw - raw * jitter * u(seed, attempt) # u uniform in [0, 1)

    so jitter shaves up to ``jitter`` (a fraction in [0, 1]) off the
    exponential envelope — delays stay bounded by ``cap`` and positive,
    and competing retriers with different seeds spread out instead of
    colliding on the same instants. ``u`` comes from one LCG draw at a
    per-attempt fast-forwarded position, so any attempt's delay can be
    computed independently (no generator state to thread through).
    """

    base: float
    factor: float = 2.0
    cap: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.cap is not None and self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        require_nonnegative_int("attempt", attempt)
        raw = self.base * self.factor**attempt
        if self.cap is not None:
            raw = min(raw, self.cap)
        if self.jitter and raw:
            u = LinearCongruential(KNUTH_LCG, self.seed).jumped(attempt).next_uniform()
            raw -= raw * self.jitter * u
        return raw

    def delays(self, attempts: int) -> tuple[float, ...]:
        """The first ``attempts`` delays — the schedule's witness tuple."""
        require_nonnegative_int("attempts", attempts)
        return tuple(self.delay(a) for a in range(attempts))

    def sleep(self, attempt: int, *, sleep: Callable[[float], None] = time.sleep) -> float:
        """Sleep out attempt ``attempt``'s delay; returns the seconds slept.

        ``sleep`` is injectable so schedulers under test (and the serve
        tier's deterministic soak harness) can record instead of wait.
        """
        seconds = self.delay(attempt)
        if seconds > 0:
            sleep(seconds)
        return seconds

    def reseeded(self, seed: int) -> "BackoffPolicy":
        """The same envelope with a different jitter stream (per retrier)."""
        return BackoffPolicy(self.base, self.factor, self.cap, self.jitter, seed)
