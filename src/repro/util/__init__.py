"""Shared utilities used by every substrate and assignment package.

The helpers here are deliberately small and dependency-free:

- :mod:`repro.util.partition` — block/cyclic index partitioning and the
  uneven task-to-node maps taught by the hyper-parameter-optimization
  assignment (paper §7).
- :mod:`repro.util.timing` — wall-clock timers and scaling-study records
  used by the benchmark harness.
- :mod:`repro.util.validation` — argument-checking helpers shared by the
  public APIs.
- :mod:`repro.util.backoff` — the shared deterministic retry-delay
  schedule (exponential envelope + seeded jitter) used by ``run_spmd``
  respawn, the Spark task-retry path, and the serve tier.
- :mod:`repro.util.tabular` — minimal CSV handling for point/label data
  (the kNN assignment's "early programming course" variant parses its
  database and queries from CSV, paper §2).
"""

from repro.util.backoff import BackoffPolicy
from repro.util.profiling import ProfileReport, profile_call
from repro.util.partition import (
    block_bounds,
    block_partition,
    block_size,
    cyclic_partition,
    distribute_tasks,
    owner_of,
)
from repro.util.timing import ScalingStudy, Timer, time_call
from repro.util.validation import (
    require_in_range,
    require_nonnegative_int,
    require_positive_int,
    require_probability,
)

__all__ = [
    "BackoffPolicy",
    "block_bounds",
    "block_partition",
    "block_size",
    "cyclic_partition",
    "distribute_tasks",
    "owner_of",
    "ProfileReport",
    "profile_call",
    "ScalingStudy",
    "Timer",
    "time_call",
    "require_in_range",
    "require_nonnegative_int",
    "require_positive_int",
    "require_probability",
]
