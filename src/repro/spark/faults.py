"""Deterministic fault injection for the mini-Spark engine.

Real Spark's defining robustness claim is that a lost task or a corrupt
shuffle fetch costs *recomputation, not wrong answers*: every partition
can be rebuilt from its RDD lineage. This module brings that claim to
the simulator with the same discipline as :mod:`repro.mpi.faults`: a
:class:`SparkFaultPlan` is *seeded* and *bit-reproducible*, built on the
:mod:`repro.rng.lcg` block-split fast-forward idiom, so "task 2 of job 5
fails on its first attempt" happens identically on every run with the
same seed.

Faults are addressed by deterministic engine coordinates rather than
wall-clock time:

- ``task`` / ``worker`` / ``straggle`` events by ``(job_index,
  partition)`` — jobs are numbered in submission order by the context,
  partitions are the task indices within a job;
- ``shuffle`` events by ``(shuffle_index, block_slot)`` — shuffles are
  numbered in materialization order, the slot is folded onto a concrete
  ``(map_task, reduce_partition)`` block when the shuffle's shape is
  known;
- ``broadcast`` events by the broadcast's creation index.

Fault kinds and the scheduler's recovery for each:

- ``task``     — the attempt raises :class:`TaskFailure` before running
  the task body; recovered by per-task retry with bounded deterministic
  backoff (``SparkContext(max_task_retries=...)``).
- ``worker``   — the attempt's worker is blacklisted and the attempt
  raises :class:`BlacklistedWorker`; the retry lands on another worker.
  The scheduler never blacklists its last live worker.
- ``straggle`` — the attempt is an injected slow node: the scheduler
  abandons it mid-sleep and launches a speculative copy on another
  worker, which always wins (deterministic winner selection — the
  original is delayed by a known injected amount).
- ``shuffle``  — a stored shuffle block is corrupted in place; the
  checksum-verified fetch detects it and the lost map output is
  **recomputed from lineage**, stopping at cached/checkpointed RDDs.
- ``broadcast``— the shipped broadcast payload is corrupted; the
  checksum on first task access detects it and refetches the driver's
  master copy.
- ``spill_delete`` / ``spill_truncate`` / ``spill_corrupt`` — a
  just-written shuffle *spill file* (out-of-core mode, see
  ``SparkContext(memory_budget=...)``) is unlinked, cut in half, or has
  a byte flipped, addressed by ``(shuffle_index, spill_file_slot)``
  with at most one event per slot. The always-on spill CRCs detect the
  damage on the first fetch that touches the file, and every map output
  that lived in it is recomputed from lineage and re-stored pinned in
  memory. ``attempts`` makes the fault re-fire on the first
  ``attempts - 1`` recoveries; once recovery failures exceed the
  context's ``max_task_retries`` the job fails structurally with a
  :class:`SparkJobFailedError` whose report names the lost spill files.

Because injected failures fire *before* the task body and accumulator
updates commit exactly once per logical task, every action under an
active plan returns results **bit-identical** to the fault-free run —
the invariant ``tests/spark/test_fault_recovery.py`` sweeps seeds over.

The default is no plan at all: ``SparkContext()`` takes the exact
fault-free hot path (one ``is None`` test per job;
``benchmarks/test_spark_fault_overhead.py`` holds the line at <5%).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.rng.lcg import KNUTH_LCG, LcgParams, LinearCongruential
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "SparkFaultEvent",
    "SparkFaultPlan",
    "SparkFaultReport",
    "SparkInjectionRecord",
    "SparkJobFailedError",
    "TaskFailure",
    "BlacklistedWorker",
    "SPARK_FAULT_KINDS",
    "SPILL_FAULT_KINDS",
]

#: The recognized fault kinds, in the order the sampler's probability
#: intervals are laid out for the per-(job, partition) draws.
SPARK_FAULT_KINDS = (
    "task",
    "worker",
    "straggle",
    "shuffle",
    "broadcast",
    "spill_delete",
    "spill_truncate",
    "spill_corrupt",
)

#: Kinds addressed by (job_index, partition) — consumed by the task scheduler.
_TASK_KINDS = frozenset({"task", "worker", "straggle"})

#: Disk-tier kinds addressed by (shuffle_index, spill_file_slot).
SPILL_FAULT_KINDS = ("spill_delete", "spill_truncate", "spill_corrupt")
_SPILL_KINDS = frozenset(SPILL_FAULT_KINDS)


class TaskFailure(RuntimeError):
    """An injected task-attempt failure (fired before the task body runs).

    The scheduler catches this and retries the task on another attempt;
    it only escapes wrapped in :class:`SparkJobFailedError` once retries
    are exhausted.
    """

    def __init__(self, job: int, partition: int, attempt: int, worker: int) -> None:
        super().__init__(
            f"injected failure: task {partition} of job {job}, "
            f"attempt {attempt} on worker {worker}"
        )
        self.job = job
        self.partition = partition
        self.attempt = attempt
        self.worker = worker


class BlacklistedWorker(RuntimeError):
    """The attempt's worker was just blacklisted by an injected worker fault.

    Like :class:`TaskFailure`, caught by the scheduler: the retry is
    assigned to a different (non-blacklisted) worker.
    """

    def __init__(self, worker: int, job: int, partition: int, attempt: int) -> None:
        super().__init__(
            f"worker {worker} blacklisted while running task {partition} "
            f"of job {job} (attempt {attempt})"
        )
        self.worker = worker
        self.job = job
        self.partition = partition
        self.attempt = attempt


class SparkJobFailedError(RuntimeError):
    """A task exhausted its retries: the job is unrecoverable.

    Carries the context's :class:`SparkFaultReport` as :attr:`report`,
    so a failed run ends with structured evidence (what fired, what was
    retried/recomputed) instead of a hang or a bare traceback.
    """

    def __init__(self, job: int, partition: int, failures: int, report: "SparkFaultReport") -> None:
        super().__init__(
            f"task {partition} of job {job} failed {failures} time(s) and "
            f"exhausted its retries\n{report.summary()}"
        )
        self.job = job
        self.partition = partition
        self.failures = failures
        self.report = report


@dataclass(frozen=True)
class SparkFaultEvent:
    """One scheduled fault at an engine coordinate.

    ``slot``/``unit`` mean (job, partition) for task-level kinds,
    (shuffle, block_slot) for ``shuffle``, and (broadcast_index, 0) for
    ``broadcast``. ``attempts`` is how many consecutive attempts a
    ``task``/``worker`` event fails; ``seconds`` is the ``straggle``
    delay.
    """

    kind: str
    slot: int
    unit: int = 0
    attempts: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SPARK_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {SPARK_FAULT_KINDS}"
            )
        require_nonnegative_int("slot", self.slot)
        require_nonnegative_int("unit", self.unit)
        require_positive_int("attempts", self.attempts)
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class SparkInjectionRecord:
    """One fault that actually fired: kind, coordinate, attempt, worker."""

    kind: str
    slot: int
    unit: int
    attempt: int = 0
    worker: int = -1
    seconds: float = 0.0


class SparkFaultPlan:
    """An immutable, seeded schedule of engine faults for one context.

    Build one explicitly from :class:`SparkFaultEvent` instances (or the
    single-event constructors below), or sample one reproducibly with
    :meth:`sample`. At most one event may target a given coordinate.
    """

    def __init__(self, events: Iterable[SparkFaultEvent] = (), *, seed: int | None = None) -> None:
        self.events: tuple[SparkFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.kind, e.slot, e.unit))
        )
        self.seed = seed
        self._tasks: dict[tuple[int, int], SparkFaultEvent] = {}
        self._shuffles: dict[int, list[SparkFaultEvent]] = {}
        self._broadcasts: dict[int, SparkFaultEvent] = {}
        self._spills: dict[tuple[int, int], SparkFaultEvent] = {}
        for event in self.events:
            if event.kind in _TASK_KINDS:
                key = (event.slot, event.unit)
                if key in self._tasks:
                    raise ValueError(f"multiple task-level events at (job, partition)={key}")
                self._tasks[key] = event
            elif event.kind == "shuffle":
                blocks = self._shuffles.setdefault(event.slot, [])
                if any(e.unit == event.unit for e in blocks):
                    raise ValueError(
                        f"multiple shuffle events at (shuffle, block)={(event.slot, event.unit)}"
                    )
                blocks.append(event)
            elif event.kind in _SPILL_KINDS:
                key = (event.slot, event.unit)
                if key in self._spills:
                    raise ValueError(
                        f"multiple spill-file events at (shuffle, file)={key}"
                    )
                self._spills[key] = event
            else:  # broadcast
                if event.slot in self._broadcasts:
                    raise ValueError(f"multiple broadcast events at index {event.slot}")
                self._broadcasts[event.slot] = event

    # ------------------------------------------------------------------
    # single-event constructors (the classroom building blocks)
    # ------------------------------------------------------------------
    @classmethod
    def fail_task(cls, job: int, partition: int, attempts: int = 1) -> "SparkFaultPlan":
        """Fail one task's first ``attempts`` attempts."""
        return cls([SparkFaultEvent("task", job, partition, attempts=attempts)])

    @classmethod
    def blacklist_worker(cls, job: int, partition: int) -> "SparkFaultPlan":
        """Blacklist whichever worker draws this task's first attempt."""
        return cls([SparkFaultEvent("worker", job, partition)])

    @classmethod
    def straggler(cls, job: int, partition: int, seconds: float = 0.002) -> "SparkFaultPlan":
        """Make one task attempt an artificial slow node."""
        return cls([SparkFaultEvent("straggle", job, partition, seconds=seconds)])

    @classmethod
    def corrupt_shuffle(cls, shuffle: int, block: int = 0) -> "SparkFaultPlan":
        """Corrupt one stored shuffle block of the ``shuffle``-th shuffle."""
        return cls([SparkFaultEvent("shuffle", shuffle, block)])

    @classmethod
    def corrupt_broadcast(cls, index: int = 0) -> "SparkFaultPlan":
        """Corrupt the shipped payload of the ``index``-th broadcast."""
        return cls([SparkFaultEvent("broadcast", index)])

    @classmethod
    def delete_spill(cls, shuffle: int, file: int = 0, attempts: int = 1) -> "SparkFaultPlan":
        """Unlink the ``file``-th spill run of the ``shuffle``-th shuffle."""
        return cls([SparkFaultEvent("spill_delete", shuffle, file, attempts=attempts)])

    @classmethod
    def truncate_spill(cls, shuffle: int, file: int = 0, attempts: int = 1) -> "SparkFaultPlan":
        """Cut the ``file``-th spill run of the ``shuffle``-th shuffle in half."""
        return cls([SparkFaultEvent("spill_truncate", shuffle, file, attempts=attempts)])

    @classmethod
    def corrupt_spill(cls, shuffle: int, file: int = 0, attempts: int = 1) -> "SparkFaultPlan":
        """Flip a byte mid-file in the ``file``-th spill run of a shuffle."""
        return cls([SparkFaultEvent("spill_corrupt", shuffle, file, attempts=attempts)])

    # ------------------------------------------------------------------
    # reproducible sampling
    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        seed: int,
        jobs: int,
        partitions: int,
        *,
        task_fail_prob: float = 0.0,
        blacklist_prob: float = 0.0,
        straggle_prob: float = 0.0,
        shuffle_corrupt_prob: float = 0.0,
        broadcast_corrupt_prob: float = 0.0,
        spill_delete_prob: float = 0.0,
        spill_truncate_prob: float = 0.0,
        spill_corrupt_prob: float = 0.0,
        shuffles: int = 4,
        shuffle_blocks: int = 16,
        broadcasts: int = 4,
        spill_files: int = 8,
        attempts: int = 1,
        spill_attempts: int = 1,
        seconds: float = 0.002,
        max_blacklists: int = 1,
        params: LcgParams = KNUTH_LCG,
    ) -> "SparkFaultPlan":
        """Draw a reproducible plan: one LCG decision per coordinate.

        Exactly the §5 traffic idiom reused by ``FaultPlan.sample``:
        every job owns a contiguous block of ``partitions`` draws from
        one shared LCG sequence, reached by O(log n) fast-forward
        (``jumped``), so the plan is bit-identical for a given ``seed``
        regardless of evaluation order. The task-level probabilities
        partition [0, 1); shuffle and broadcast corruption draw from
        their own fast-forwarded regions with independent probabilities,
        and the three spill-file probabilities partition one draw per
        ``(shuffle, spill_file_slot)`` — slots a run never writes are
        harmless no-ops, so plans compose with any memory budget.

        ``max_blacklists`` caps worker deaths (the scheduler additionally
        refuses to blacklist its last live worker), and ``attempts``
        (per failing task) / ``spill_attempts`` (per destroyed spill
        file) should stay at or below the context's ``max_task_retries``
        for the plan to be recoverable.
        """
        require_positive_int("jobs", jobs)
        require_positive_int("partitions", partitions)
        require_positive_int("shuffles", shuffles)
        require_positive_int("shuffle_blocks", shuffle_blocks)
        require_positive_int("broadcasts", broadcasts)
        require_positive_int("spill_files", spill_files)
        probs = (task_fail_prob, blacklist_prob, straggle_prob)
        if any(p < 0 for p in probs) or sum(probs) > 1.0:
            raise ValueError(f"task-level probabilities must be >= 0 and sum to <= 1, got {probs}")
        for name, p in (("shuffle_corrupt_prob", shuffle_corrupt_prob),
                        ("broadcast_corrupt_prob", broadcast_corrupt_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        spill_probs = (spill_delete_prob, spill_truncate_prob, spill_corrupt_prob)
        if any(p < 0 for p in spill_probs) or sum(spill_probs) > 1.0:
            raise ValueError(
                f"spill-file probabilities must be >= 0 and sum to <= 1, got {spill_probs}"
            )

        base = LinearCongruential(params, seed)
        events: list[SparkFaultEvent] = []
        blacklists = 0
        for job in range(jobs):
            stream = base.jumped(job * partitions)
            for part in range(partitions):
                u = stream.next_uniform()
                if u < task_fail_prob:
                    events.append(SparkFaultEvent("task", job, part, attempts=attempts))
                elif u < task_fail_prob + blacklist_prob:
                    if blacklists < max_blacklists:
                        blacklists += 1
                        events.append(SparkFaultEvent("worker", job, part))
                elif u < task_fail_prob + blacklist_prob + straggle_prob:
                    events.append(SparkFaultEvent("straggle", job, part, seconds=seconds))
        offset = jobs * partitions
        for shuffle in range(shuffles):
            stream = base.jumped(offset + shuffle * shuffle_blocks)
            for block in range(shuffle_blocks):
                if stream.next_uniform() < shuffle_corrupt_prob:
                    events.append(SparkFaultEvent("shuffle", shuffle, block))
        stream = base.jumped(offset + shuffles * shuffle_blocks)
        for index in range(broadcasts):
            if stream.next_uniform() < broadcast_corrupt_prob:
                events.append(SparkFaultEvent("broadcast", index))
        # Spill-file region: one draw per (shuffle, spill slot), laid out
        # after the broadcast region so pre-existing seeds keep drawing
        # exactly the plans they always did.
        spill_offset = offset + shuffles * shuffle_blocks + broadcasts
        for shuffle in range(shuffles):
            stream = base.jumped(spill_offset + shuffle * spill_files)
            for slot in range(spill_files):
                u = stream.next_uniform()
                if u < spill_delete_prob:
                    events.append(
                        SparkFaultEvent("spill_delete", shuffle, slot, attempts=spill_attempts)
                    )
                elif u < spill_delete_prob + spill_truncate_prob:
                    events.append(
                        SparkFaultEvent("spill_truncate", shuffle, slot, attempts=spill_attempts)
                    )
                elif u < sum(spill_probs):
                    events.append(
                        SparkFaultEvent("spill_corrupt", shuffle, slot, attempts=spill_attempts)
                    )
        return cls(events, seed=seed)

    # ------------------------------------------------------------------
    # lookups (consumed by the scheduler / shuffle store / broadcasts)
    # ------------------------------------------------------------------
    def task_event(self, job: int, partition: int) -> SparkFaultEvent | None:
        """The task-level event scheduled at ``(job, partition)``, if any."""
        return self._tasks.get((job, partition))

    def shuffle_events(self, shuffle: int) -> list[SparkFaultEvent]:
        """Corruption events scheduled on the ``shuffle``-th shuffle."""
        return list(self._shuffles.get(shuffle, ()))

    @property
    def has_shuffle_events(self) -> bool:
        """Whether any shuffle corruption is scheduled at all.

        The engine consults this to decide whether shuffle stores need
        checksums: corruption only ever enters through the plan, so a
        plan that schedules none keeps the zero-overhead plain blocks.
        """
        return bool(self._shuffles)

    def broadcast_event(self, index: int) -> SparkFaultEvent | None:
        """The corruption event scheduled on the ``index``-th broadcast."""
        return self._broadcasts.get(index)

    def spill_event(self, shuffle: int, slot: int) -> SparkFaultEvent | None:
        """The disk-fault event scheduled on one spill-file slot, if any."""
        return self._spills.get((shuffle, slot))

    @property
    def has_spill_events(self) -> bool:
        """Whether any spill-file destruction is scheduled at all."""
        return bool(self._spills)

    def trace(self) -> tuple[tuple[str, int, int], ...]:
        """Normalized (kind, slot, unit) tuples — the reproducibility witness."""
        return tuple((e.kind, e.slot, e.unit) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        seed = f", seed={self.seed}" if self.seed is not None else ""
        return f"SparkFaultPlan({len(self.events)} events{seed})"


@dataclass
class SparkFaultReport:
    """What the fault layer observed during one context's lifetime.

    Reached as ``ctx.fault_report`` (``None`` when no plan is installed)
    and carried by :class:`SparkJobFailedError` on unrecoverable plans.
    All mutators are thread-safe; readers should run after the jobs
    they care about have returned.
    """

    plan: SparkFaultPlan | None = None
    injected: list[SparkInjectionRecord] = field(default_factory=list)
    retries: dict[tuple[int, int], int] = field(default_factory=dict)
    recomputed: list[tuple[int, int]] = field(default_factory=list)
    blacklisted: list[int] = field(default_factory=list)
    speculative: list[tuple[int, int]] = field(default_factory=list)
    broadcast_refetches: int = 0
    worker_crashes: list[tuple[int, int]] = field(default_factory=list)
    #: (shuffle, spill_slot, reason, path) per detected spill-file loss.
    spill_losses: list[tuple[int, int, str, str]] = field(default_factory=list)
    #: (shuffle, spill_slot) per spill file healed via lineage.
    spill_recoveries: list[tuple[int, int]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_injection(self, record: SparkInjectionRecord) -> None:
        """Log one fired fault (called by the scheduler/stores)."""
        with self._lock:
            self.injected.append(record)

    def record_retry(self, job: int, partition: int) -> None:
        """Log one failed attempt that will be retried (or escalate)."""
        with self._lock:
            key = (job, partition)
            self.retries[key] = self.retries.get(key, 0) + 1

    def record_recompute(self, shuffle: int, map_task: int) -> None:
        """Log one lost map output rebuilt from lineage."""
        with self._lock:
            self.recomputed.append((shuffle, map_task))

    def record_blacklist(self, worker: int) -> None:
        """Log one worker removed from scheduling."""
        with self._lock:
            self.blacklisted.append(worker)

    def record_speculative(self, job: int, partition: int) -> None:
        """Log one speculative copy launched against a straggler."""
        with self._lock:
            self.speculative.append((job, partition))

    def record_broadcast_refetch(self) -> None:
        """Log one corrupted broadcast payload restored from the driver."""
        with self._lock:
            self.broadcast_refetches += 1

    def record_worker_crash(self, worker: int, lost_tasks: int) -> None:
        """Log one executor worker *process* that died mid-job (process
        backend); its lost task results were re-executed on the driver."""
        with self._lock:
            self.worker_crashes.append((worker, lost_tasks))

    def record_spill_loss(self, shuffle: int, slot: int, reason: str, path: str) -> None:
        """Log one spill file detected missing/truncated/corrupt on fetch."""
        with self._lock:
            self.spill_losses.append((shuffle, slot, reason, path))

    def record_spill_recovery(self, shuffle: int, slot: int) -> None:
        """Log one lost spill file's map outputs rebuilt from lineage."""
        with self._lock:
            self.spill_recoveries.append((shuffle, slot))

    def lost_spill_files(self) -> list[tuple[int, int, str, str]]:
        """The spill files this run lost, as (shuffle, slot, reason, path)."""
        with self._lock:
            return sorted(self.spill_losses)

    def trace(self) -> tuple[tuple[str, int, int, int], ...]:
        """Normalized fired-fault tuples — equal across runs of one seed
        (for pipelines whose job-submission order is deterministic)."""
        with self._lock:
            return tuple(
                (rec.kind, rec.slot, rec.unit, rec.attempt)
                for rec in sorted(self.injected, key=lambda r: (r.kind, r.slot, r.unit, r.attempt))
            )

    def summary(self) -> str:
        """One human-readable paragraph (for logs and teaching output)."""
        with self._lock:
            lines = [f"SparkFaultReport: {len(self.injected)} fault(s) fired"]
            for rec in sorted(self.injected, key=lambda r: (r.kind, r.slot, r.unit, r.attempt)):
                extra = f" ({rec.seconds:.3f}s)" if rec.seconds else ""
                where = f"worker {rec.worker}" if rec.worker >= 0 else "engine"
                lines.append(
                    f"  - {rec.kind} at ({rec.slot}, {rec.unit}) "
                    f"attempt {rec.attempt} [{where}]{extra}"
                )
            if self.retries:
                total = sum(self.retries.values())
                lines.append(f"  {total} retried attempt(s) over {len(self.retries)} task(s)")
            if self.recomputed:
                lines.append(
                    f"  {len(self.recomputed)} map output(s) recomputed from lineage: "
                    + ", ".join(f"shuffle {s} map {m}" for s, m in self.recomputed)
                )
            if self.blacklisted:
                lines.append(f"  worker(s) blacklisted: {sorted(self.blacklisted)}")
            if self.speculative:
                lines.append(f"  {len(self.speculative)} speculative task(s) launched (all won)")
            if self.broadcast_refetches:
                lines.append(f"  {self.broadcast_refetches} broadcast payload(s) refetched")
            if self.worker_crashes:
                lost = sum(n for _w, n in self.worker_crashes)
                lines.append(
                    f"  {len(self.worker_crashes)} worker process crash(es), "
                    f"{lost} lost task(s) re-executed on the driver"
                )
            if self.spill_losses:
                lines.append(f"  {len(self.spill_losses)} spill file(s) lost:")
                for shuffle, slot, reason, path in sorted(self.spill_losses):
                    lines.append(
                        f"    - shuffle {shuffle} spill file {slot} ({reason}): {path}"
                    )
            if self.spill_recoveries:
                lines.append(
                    f"  {len(self.spill_recoveries)} spill file(s) recovered from lineage: "
                    + ", ".join(f"shuffle {s} file {f}" for s, f in sorted(self.spill_recoveries))
                )
            if len(lines) == 1:
                lines.append("  nothing fired")
        return "\n".join(lines)
