"""Numeric actions for RDDs: summary statistics, histograms, sampling.

The pipeline assignment's analysis stages lean on exactly these: a
``stats()`` pass over a cleaned column, a ``histogram`` for the
visualization step, and ``take_sample`` for eyeballing records. All are
implemented as single-job aggregations (no collect-then-compute), which
is the scalability habit the course drills.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng.counter import CounterRNG
from repro.spark.rdd import RDD
from repro.util.validation import require_positive_int

__all__ = ["StatCounter", "stats", "histogram", "take_sample"]


@dataclass
class StatCounter:
    """Streaming summary: count / mean / variance / extrema.

    Merged with Chan et al.'s parallel variance update, so partition
    partials combine exactly (used as the comb side of ``aggregate``).
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf

    def push(self, x: float) -> "StatCounter":
        """Fold one value in (Welford update)."""
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        self.min_value = min(self.min_value, x)
        self.max_value = max(self.max_value, x)
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        """Combine two partials exactly."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 values)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)


def stats(rdd: RDD) -> StatCounter:
    """One-pass summary statistics of a numeric RDD."""
    return rdd.aggregate(
        StatCounter(),
        lambda acc, x: acc.push(x),
        lambda a, b: a.merge(b),
    )


def histogram(rdd: RDD, bins: int, *, lo: float | None = None, hi: float | None = None) -> tuple[np.ndarray, np.ndarray]:
    """(bin_edges, counts) over a numeric RDD.

    Bounds default to the data's min/max (one extra stats pass); the
    counting pass itself is a single aggregate with per-partition numpy
    bincounts. The top edge is inclusive, like numpy's histogram.
    """
    require_positive_int("bins", bins)
    if lo is None or hi is None:
        summary = stats(rdd)
        if summary.count == 0:
            raise ValueError("cannot histogram an empty RDD")
        lo = summary.min_value if lo is None else lo
        hi = summary.max_value if hi is None else hi
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    if hi == lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    width = (hi - lo) / bins

    def seq(acc: np.ndarray, x: float) -> np.ndarray:
        if lo <= x <= hi:
            idx = min(int((x - lo) / width), bins - 1)
            acc[idx] += 1
        return acc

    counts = rdd.aggregate(np.zeros(bins, dtype=np.int64), seq, lambda a, b: a + b)
    return edges, counts


def take_sample(rdd: RDD, n: int, seed: int = 0) -> list:
    """``n`` elements sampled without replacement, deterministically.

    Uses a counter-RNG keyed sort of element indices — O(total) work but
    exact and reproducible, fine at pipeline scale.
    """
    require_positive_int("n", n)
    indexed = rdd.zip_with_index().collect()
    if not indexed:
        return []
    rng = CounterRNG(seed=seed, stream=0x7361)  # 'sa'
    keyed = sorted(indexed, key=lambda xi: rng.raw(xi[1]))
    return [x for x, _ in keyed[:n]]
