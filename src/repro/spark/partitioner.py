"""Partitioners: how keys map to reduce-side partitions.

The pipeline assignment's wide transformations (``reduceByKey``,
``join``, ``sortByKey``) all route records by key. Two classic policies:

- :class:`HashPartitioner` — deterministic hash placement (the default),
- :class:`RangePartitioner` — order-preserving placement by sampled key
  boundaries, which is what makes ``sortByKey`` produce globally sorted
  output from per-partition sorts.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from repro.mapreduce.hashing import stable_hash
from repro.util.validation import require_positive_int

__all__ = ["HashPartitioner", "RangePartitioner"]


class HashPartitioner:
    """Key → ``stable_hash(key) % num_partitions``."""

    def __init__(self, num_partitions: int) -> None:
        self.num_partitions = require_positive_int("num_partitions", num_partitions)

    def partition(self, key: Any) -> int:
        """Owning partition of ``key``."""
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashPartitioner) and other.num_partitions == self.num_partitions

    def __hash__(self) -> int:
        return hash(("hash", self.num_partitions))


class RangePartitioner:
    """Key → the range bucket it falls into, per sorted ``bounds``.

    ``bounds`` are the ``num_partitions - 1`` split points: keys ``<=
    bounds[0]`` go to partition 0, etc. Build from data with
    :meth:`from_keys`.
    """

    def __init__(self, bounds: Sequence[Any], *, ascending: bool = True) -> None:
        self.bounds = list(bounds)
        self.ascending = ascending
        self.num_partitions = len(self.bounds) + 1

    @classmethod
    def from_keys(
        cls, keys: Sequence[Any], num_partitions: int, *, ascending: bool = True
    ) -> "RangePartitioner":
        """Choose balanced split points from the observed key population."""
        require_positive_int("num_partitions", num_partitions)
        distinct = sorted(set(keys))
        if num_partitions == 1 or len(distinct) <= 1:
            return cls([], ascending=ascending)
        bounds = []
        for i in range(1, num_partitions):
            idx = i * len(distinct) // num_partitions
            bound = distinct[min(idx, len(distinct) - 1)]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(bounds, ascending=ascending)

    def partition(self, key: Any) -> int:
        """Owning partition; reversed when ``ascending=False``."""
        bucket = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            bucket = len(self.bounds) - bucket
        return bucket

    def __eq__(self, other: object) -> bool:
        # Equal bounds + direction route every key identically, which is
        # what the co-partitioning optimization needs to skip a shuffle.
        return (
            isinstance(other, RangePartitioner)
            and other.bounds == self.bounds
            and other.ascending == self.ascending
        )

    def __hash__(self) -> int:
        return hash(("range", tuple(self.bounds), self.ascending))
