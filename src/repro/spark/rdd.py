"""RDDs: lazy, immutable, partitioned collections with lineage.

Transformations build a DAG of RDD objects; nothing runs until an
action. Wide (shuffle) boundaries are explicit :class:`ShuffledRDD`
nodes, so :mod:`repro.spark.dag` can show students exactly where their
pipeline pays for communication — the central design skill the course
teaches (paper §4).
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.rng.counter import CounterRNG
from repro.spark.partitioner import HashPartitioner, RangePartitioner
from repro.spark.shuffle import CorruptShuffleBlockError, LostSpillFileError

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext

__all__ = [
    "RDD",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "ShuffledRDD",
    "NarrowDependency",
    "ShuffleDependency",
]


#: Placeholder for a checkpoint slot that hasn't materialized yet
#: (``None`` can't serve: an empty partition is valid data).
_MISSING = object()


class NarrowDependency:
    """Child partition i depends on a bounded set of parent partitions."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class ShuffleDependency:
    """Child partitions depend on *all* parent partitions (a wide dep)."""

    def __init__(self, parent: "RDD", partitioner: Any) -> None:
        self.parent = parent
        self.partitioner = partitioner


class RDD:
    """Base class: lineage node + the full transformation/action API."""

    def __init__(self, ctx: "SparkContext", num_partitions: int, deps: Sequence[Any]) -> None:
        self.ctx = ctx
        self.num_partitions = num_partitions
        self.deps = list(deps)
        self.id = ctx._next_rdd_id()
        #: The partitioner this RDD's pairs are known to be laid out by
        #: (None = unknown). Set by shuffles; preserved by map_values/
        #: flat_map_values; lets later same-partitioner aggregations skip
        #: their shuffle (Spark's co-partitioning optimization).
        self.partitioner: Any = None
        self._cached: list[list[Any]] | None = None
        self._persist = False
        self._checkpoint = False
        self._ckpt_data: list[Any] | None = None
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # execution plumbing
    # ------------------------------------------------------------------
    def compute(self, split: int) -> list[Any]:  # pragma: no cover - abstract
        """Materialize partition ``split`` (subclass responsibility)."""
        raise NotImplementedError

    def partition(self, split: int) -> list[Any]:
        """Partition ``split``, consulting/populating the cache if persisted."""
        if self._checkpoint:
            return self._checkpointed_partition(split)
        if not self._persist:
            return self.compute(split)
        with self._cache_lock:
            if self._cached is None:
                self._cached = [None] * self.num_partitions  # type: ignore[list-item]
        cached = self._cached
        if cached[split] is None:
            data = self.compute(split)
            with self._cache_lock:
                if cached[split] is None:
                    cached[split] = data
                    self.ctx.metrics.partitions_cached += 1
        return cached[split]  # type: ignore[return-value]

    def persist(self) -> "RDD":
        """Keep computed partitions in memory for reuse (Spark's ``cache``)."""
        self._persist = True
        return self

    cache = persist

    def unpersist(self) -> "RDD":
        """Drop any cached partitions and stop caching."""
        with self._cache_lock:
            self._persist = False
            self._cached = None
        return self

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> "RDD":
        """Mark this RDD as a durable recomputation barrier.

        Like ``persist``, partitions are materialized lazily on first
        use and served from memory after — but a checkpoint additionally
        **truncates lineage**: once every partition is stored, ``deps``
        is cleared, so neither lineage walks (:mod:`repro.spark.dag`)
        nor fault recovery ever recompute past it. ``persist`` is a hint
        (droppable, lineage intact); ``checkpoint`` is a promise.
        """
        self._checkpoint = True
        return self

    @property
    def is_checkpointed(self) -> bool:
        """Whether every partition has been checkpoint-materialized."""
        with self._cache_lock:
            data = self._ckpt_data
            return data is not None and all(d is not _MISSING for d in data)

    @property
    def is_recompute_barrier(self) -> bool:
        """Whether fault recovery stops here instead of recursing deeper
        (the RDD is marked for checkpointing or persisted)."""
        return self._checkpoint or self._persist

    def _uncached_splits(self) -> list[int]:
        """Partitions the persist/checkpoint cache does not hold yet
        (empty when the RDD isn't persisted or checkpointed at all).

        Used by the process backend to find what must be materialized
        driver-side before forking workers (a fill computed inside a
        worker would die with it).
        """
        with self._cache_lock:
            if self._checkpoint:
                if self._ckpt_data is None:
                    return list(range(self.num_partitions))
                return [i for i, d in enumerate(self._ckpt_data) if d is _MISSING]
            if self._persist:
                if self._cached is None:
                    return list(range(self.num_partitions))
                return [i for i, d in enumerate(self._cached) if d is None]
            return []

    def _install_partition(self, split: int, data: list[Any]) -> None:
        """Driver-side install of an externally computed partition into the
        persist/checkpoint cache (the process backend's cache-fill path —
        same bookkeeping as computing it through :meth:`partition`)."""
        if self._checkpoint:
            with self._cache_lock:
                if self._ckpt_data is None:
                    self._ckpt_data = [_MISSING] * self.num_partitions
                if self._ckpt_data[split] is not _MISSING:
                    return
                self._ckpt_data[split] = data
                complete = all(d is not _MISSING for d in self._ckpt_data)
            self.ctx.metrics.bump("spark.checkpointed_partitions")
            if complete:
                self.deps = []
                from repro.trace.tracer import get_tracer

                get_tracer().instant(
                    "checkpoint_complete", category="spark.fault", rdd=self.id
                )
            return
        if not self._persist:
            return
        with self._cache_lock:
            if self._cached is None:
                self._cached = [None] * self.num_partitions  # type: ignore[list-item]
            if self._cached[split] is None:
                self._cached[split] = data
                self.ctx.metrics.partitions_cached += 1

    def _checkpointed_partition(self, split: int) -> list[Any]:
        with self._cache_lock:
            if self._ckpt_data is None:
                self._ckpt_data = [_MISSING] * self.num_partitions
            data = self._ckpt_data[split]
        if data is not _MISSING:
            return data
        computed = self.compute(split)
        with self._cache_lock:
            if self._ckpt_data[split] is _MISSING:
                self._ckpt_data[split] = computed
                self.ctx.metrics.bump("spark.checkpointed_partitions")
                if all(d is not _MISSING for d in self._ckpt_data):
                    # Checkpoint complete: truncate lineage for good.
                    self.deps = []
                    from repro.trace.tracer import get_tracer

                    get_tracer().instant(
                        "checkpoint_complete", category="spark.fault", rdd=self.id
                    )
            else:
                computed = self._ckpt_data[split]
        return computed

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------
    def map_partitions_with_index(
        self, f: Callable[[int, list[Any]], Iterable[Any]]
    ) -> "RDD":
        """Transform each partition's element list (with its index)."""
        return MapPartitionsRDD(self, f)

    def map_partitions(self, f: Callable[[list[Any]], Iterable[Any]]) -> "RDD":
        """Transform each partition's element list."""
        return MapPartitionsRDD(self, lambda _i, part: f(part))

    def map(self, f: Callable[[Any], Any]) -> "RDD":
        """Apply ``f`` to every element."""
        return self.map_partitions(lambda part: [f(x) for x in part])

    def flat_map(self, f: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Apply ``f`` and flatten the resulting iterables."""
        return self.map_partitions(lambda part: [y for x in part for y in f(x)])

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        """Keep elements where ``pred`` is true."""
        return self.map_partitions(lambda part: [x for x in part if pred(x)])

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return self.map_partitions(lambda part: [list(part)])

    def key_by(self, f: Callable[[Any], Any]) -> "RDD":
        """Element ``x`` becomes ``(f(x), x)``."""
        return self.map(lambda x: (f(x), x))

    def map_values(self, f: Callable[[Any], Any]) -> "RDD":
        """Pair RDD: transform values, keep keys and partitioning."""
        out = self.map(lambda kv: (kv[0], f(kv[1])))
        out.partitioner = self.partitioner  # keys untouched: layout survives
        return out

    def flat_map_values(self, f: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Pair RDD: expand each value into several pairs with the same key."""
        out = self.flat_map(lambda kv: [(kv[0], v) for v in f(kv[1])])
        out.partitioner = self.partitioner
        return out

    def keys(self) -> "RDD":
        """Pair RDD: the keys."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        """Pair RDD: the values."""
        return self.map(lambda kv: kv[1])

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (no dedup, like Spark)."""
        return UnionRDD(self.ctx, [self, other])

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Deterministic Bernoulli sample: element kept iff its counter-RNG
        draw (indexed by partition and position) falls below ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def sampler(index: int, part: list[Any]) -> list[Any]:
            rng = CounterRNG(seed=seed, stream=index)
            return [x for i, x in enumerate(part) if rng.uniform(i) < fraction]

        return self.map_partitions_with_index(sampler)

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global index (triggers a size job)."""
        sizes = self.ctx.run_job(self, lambda _i, part: len(part))
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        def indexer(index: int, part: list[Any]) -> list[Any]:
            base = offsets[index]
            return [(x, base + i) for i, x in enumerate(part)]

        return self.map_partitions_with_index(indexer)

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle (merges adjacent blocks)."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        return CoalescedRDD(self, min(num_partitions, self.num_partitions))

    def zip(self, other: "RDD") -> "RDD":
        """Pair up elements positionally: ``(self[i], other[i])``.

        Like Spark, requires identical partition counts *and* per-
        partition sizes (checked at compute time).
        """
        if other.num_partitions != self.num_partitions:
            raise ValueError(
                f"zip needs equal partition counts: {self.num_partitions} vs {other.num_partitions}"
            )
        return ZippedRDD(self, other)

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs ``(a, b)``: the cross product (|self|·|other| elements)."""
        return CartesianRDD(self, other)

    def group_by(self, key_fn: Callable[[Any], Any], num_partitions: int | None = None) -> "RDD":
        """Group whole elements by ``key_fn``: ``(key, [elements])``."""
        return self.key_by(key_fn).group_by_key(num_partitions)

    def fold_by_key(
        self, zero: Any, f: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        """Per-key fold with a zero element (deep-copied per key)."""
        import copy

        return self.combine_by_key(
            lambda v: f(copy.deepcopy(zero), v), f, f, num_partitions
        )

    # ------------------------------------------------------------------
    # wide (shuffle) transformations
    # ------------------------------------------------------------------
    def partition_by(self, partitioner: Any) -> "RDD":
        """Pair RDD: route each pair to ``partitioner.partition(key)``."""
        return ShuffledRDD(
            self,
            partitioner,
            create=lambda v: [v],
            merge_value=lambda acc, v: (acc.append(v), acc)[1],
            merge_combiners=lambda a, b: a + b,
            map_side_combine=False,
            flatten_values=True,
        )

    def combine_by_key(
        self,
        create: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        *,
        map_side_combine: bool = True,
    ) -> "RDD":
        """The general aggregation: per-key combiners, optionally pre-merged
        map-side (the shuffle-volume optimization).

        If this RDD is already laid out by an equal partitioner
        (``self.partitioner``), the shuffle is skipped entirely and the
        combine runs partition-locally — Spark's co-partitioning
        optimization, visible in ``ctx.metrics.shuffles``.
        """
        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        if self.partitioner is not None and self.partitioner == partitioner:
            def local_combine(part: list[Any]) -> list[Any]:
                merged: dict[Any, Any] = {}
                order: list[Any] = []
                for key, value in part:
                    if key in merged:
                        merged[key] = merge_value(merged[key], value)
                    else:
                        merged[key] = create(value)
                        order.append(key)
                return [(k, merged[k]) for k in order]

            out = self.map_partitions(local_combine)
            out.partitioner = partitioner
            return out
        return ShuffledRDD(
            self,
            partitioner,
            create=create,
            merge_value=merge_value,
            merge_combiners=merge_combiners,
            map_side_combine=map_side_combine,
        )

    def reduce_by_key(
        self, f: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        """Merge values per key with ``f`` (map-side combined)."""
        return self.combine_by_key(lambda v: v, f, f, num_partitions)

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Collect all values per key into a list (no map-side combine —
        grouping gains nothing from it, exactly Spark's behaviour)."""
        return self.combine_by_key(
            lambda v: [v],
            lambda acc, v: (acc.append(v), acc)[1],
            lambda a, b: a + b,
            num_partitions,
            map_side_combine=False,
        )

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        """Per-key fold with a zero element (copied per key via closure)."""
        import copy

        return self.combine_by_key(
            lambda v: seq_fn(copy.deepcopy(zero), v), seq_fn, comb_fn, num_partitions
        )

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Unique elements (one shuffle)."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Pair RDDs: ``(key, (self_values, other_values))`` for keys in either."""
        nparts = num_partitions or max(self.num_partitions, other.num_partitions)
        tagged = self.map_values(lambda v: (0, v)).union(other.map_values(lambda v: (1, v)))

        def create(tv: tuple[int, Any]) -> tuple[list[Any], list[Any]]:
            groups: tuple[list[Any], list[Any]] = ([], [])
            groups[tv[0]].append(tv[1])
            return groups

        def merge_value(groups, tv):
            groups[tv[0]].append(tv[1])
            return groups

        def merge_combiners(a, b):
            return (a[0] + b[0], a[1] + b[1])

        return tagged.combine_by_key(
            create, merge_value, merge_combiners, nparts, map_side_combine=False
        )

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join: ``(key, (left_value, right_value))`` per matching pair."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: [(lv, rv) for lv in groups[0] for rv in groups[1]]
        )

    def broadcast_join(self, other: "RDD") -> "RDD":
        """Inner join against a *small* pair RDD without any shuffle.

        The classic join-strategy optimization the course teaches: when
        one side fits in memory, collect it once, broadcast the lookup
        table, and stream the big side through a narrow map — zero
        shuffle records versus two full shuffles for the cogroup-based
        :meth:`join`. Output pairs match :meth:`join` exactly (asserted
        in tests); only the plan differs.
        """
        from repro.spark.broadcast import Broadcast

        table: dict[Any, list[Any]] = {}
        for key, value in other.collect():
            table.setdefault(key, []).append(value)
        lookup = Broadcast(table)
        return self.flat_map(
            lambda kv: [
                (kv[0], (kv[1], rv)) for rv in lookup.value.get(kv[0], [])
            ]
        )

    def left_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Left join: right value is ``None`` when the key has no match."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: [
                (lv, rv) for lv in groups[0] for rv in (groups[1] or [None])
            ]
        )

    def right_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Right join: left value is ``None`` when the key has no match."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: [
                (lv, rv) for rv in groups[1] for lv in (groups[0] or [None])
            ]
        )

    def full_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Full outer join: missing sides are ``None``."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: [
                (lv, rv)
                for lv in (groups[0] or [None])
                for rv in (groups[1] or [None])
            ]
        )

    def subtract_by_key(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Pairs whose key does not appear in ``other``."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: groups[0] if not groups[1] else []
        )

    def intersection(self, other: "RDD") -> "RDD":
        """Distinct elements present in both RDDs."""
        left = self.map(lambda x: (x, None))
        right = other.map(lambda x: (x, None))
        return left.cogroup(right).filter(
            lambda kv: bool(kv[1][0]) and bool(kv[1][1])
        ).keys()

    def subtract(self, other: "RDD") -> "RDD":
        """Elements of self not present in other (keeps duplicates of self)."""
        left = self.map(lambda x: (x, None))
        right = other.map(lambda x: (x, None))
        return left.subtract_by_key(right).keys()

    def repartition(self, num_partitions: int) -> "RDD":
        """Change partition count via a round-robin shuffle."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")

        def tag(index: int, part: list[Any]) -> list[Any]:
            return [((index + i) % num_partitions, x) for i, x in enumerate(part)]

        tagged = self.map_partitions_with_index(tag)
        routed = tagged.partition_by(_ModPartitioner(num_partitions))
        return routed.values()

    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD":
        """Globally sort by ``key_fn`` via range partitioning + local sorts."""
        nparts = num_partitions or self.num_partitions
        keyed = self.key_by(key_fn)
        all_keys = keyed.keys().collect()
        partitioner = RangePartitioner.from_keys(all_keys, nparts, ascending=ascending)
        routed = keyed.partition_by(partitioner)
        ordered = routed.map_partitions(
            lambda part: sorted(part, key=lambda kv: kv[0], reverse=not ascending)
        )
        return ordered.values()

    def sort_by_key(self, ascending: bool = True, num_partitions: int | None = None) -> "RDD":
        """Pair RDD: global sort by key."""
        nparts = num_partitions or self.num_partitions
        all_keys = self.keys().collect()
        partitioner = RangePartitioner.from_keys(all_keys, nparts, ascending=ascending)
        routed = self.partition_by(partitioner)
        return routed.map_partitions(
            lambda part: sorted(part, key=lambda kv: kv[0], reverse=not ascending)
        )

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> list[Any]:
        """All elements, in partition order."""
        parts = self.ctx.run_job(self, lambda _i, part: list(part))
        return [x for part in parts for x in part]

    def collect_as_map(self) -> dict[Any, Any]:
        """Pair RDD: collected into a dict (later pairs win on duplicates)."""
        return dict(self.collect())

    def count(self) -> int:
        """Number of elements."""
        return sum(self.ctx.run_job(self, lambda _i, part: len(part)))

    def first(self) -> Any:
        """First element (IndexError on empty RDD)."""
        taken = self.take(1)
        if not taken:
            raise IndexError("first() on an empty RDD")
        return taken[0]

    def take(self, n: int) -> list[Any]:
        """First ``n`` elements, computing partitions only as needed."""
        if n <= 0:
            return []
        out: list[Any] = []
        for split in range(self.num_partitions):
            out.extend(self.partition(split))
            if len(out) >= n:
                break
        return out[:n]

    def top(self, n: int, key: Callable[[Any], Any] | None = None) -> list[Any]:
        """Largest ``n`` elements, descending."""
        data = self.collect()
        return heapq.nlargest(n, data, key=key)

    def take_ordered(self, n: int, key: Callable[[Any], Any] | None = None) -> list[Any]:
        """Smallest ``n`` elements, ascending."""
        data = self.collect()
        return heapq.nsmallest(n, data, key=key)

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements with ``f`` (ValueError on empty RDD)."""
        parts = self.ctx.run_job(
            self, lambda _i, part: _fold_or_none(part, f)
        )
        nonempty = [p for p in parts if p is not _EMPTY]
        if not nonempty:
            raise ValueError("reduce() on an empty RDD")
        acc = nonempty[0]
        for p in nonempty[1:]:
            acc = f(acc, p)
        return acc

    def fold(self, zero: Any, f: Callable[[Any, Any], Any]) -> Any:
        """Fold with a zero element applied per partition and at merge."""
        parts = self.ctx.run_job(
            self, lambda _i, part: _fold_with_zero(part, zero, f)
        )
        acc = zero
        for p in parts:
            acc = f(acc, p)
        return acc

    def aggregate(
        self, zero: Any, seq_fn: Callable[[Any, Any], Any], comb_fn: Callable[[Any, Any], Any]
    ) -> Any:
        """Generalized fold with distinct in-partition and merge functions."""
        import copy

        def seq_part(_i: int, part: list[Any]) -> Any:
            acc = copy.deepcopy(zero)
            for x in part:
                acc = seq_fn(acc, x)
            return acc

        parts = self.ctx.run_job(self, seq_part)
        acc = copy.deepcopy(zero)
        for p in parts:
            acc = comb_fn(acc, p)
        return acc

    def sum(self) -> Any:
        """Sum of elements (0 for empty)."""
        return self.fold(0, lambda a, b: a + b)

    def mean(self) -> float:
        """Arithmetic mean (ValueError on empty RDD)."""
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise ValueError("mean() on an empty RDD")
        return total / count

    def min(self) -> Any:
        """Smallest element."""
        return self.reduce(lambda a, b: b if b < a else a)

    def max(self) -> Any:
        """Largest element."""
        return self.reduce(lambda a, b: b if b > a else a)

    def count_by_key(self) -> dict[Any, int]:
        """Pair RDD: occurrences per key (driver-side dict)."""
        counts: dict[Any, int] = {}
        for k, _ in self.collect():
            counts[k] = counts.get(k, 0) + 1
        return counts

    def count_by_value(self) -> dict[Any, int]:
        """Occurrences per distinct element."""
        counts: dict[Any, int] = {}
        for x in self.collect():
            counts[x] = counts.get(x, 0) + 1
        return counts

    def foreach(self, f: Callable[[Any], None]) -> None:
        """Run ``f`` for its side effects on every element."""
        self.ctx.run_job(self, lambda _i, part: [f(x) for x in part] and None)

    def save_as_text_file(self, directory) -> None:
        """Write one ``part-NNNNN`` file per partition (str() per element).

        The HDFS-output stand-in; read back with
        :meth:`SparkContext.text_file` over the part files.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        def write_part(index: int, part: list[Any]) -> None:
            path = directory / f"part-{index:05d}"
            path.write_text("".join(f"{x}\n" for x in part))

        self.ctx.run_job(self, write_part)
        (directory / "_SUCCESS").write_text("")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id}, partitions={self.num_partitions})"


class _ModPartitioner:
    """Integer keys routed by value modulo — exact round-robin balance."""

    def __init__(self, num_partitions: int) -> None:
        self.num_partitions = num_partitions

    def partition(self, key: int) -> int:
        return key % self.num_partitions


_EMPTY = object()


def _fold_or_none(part: list[Any], f: Callable[[Any, Any], Any]) -> Any:
    if not part:
        return _EMPTY
    acc = part[0]
    for x in part[1:]:
        acc = f(acc, x)
    return acc


def _fold_with_zero(part: list[Any], zero: Any, f: Callable[[Any, Any], Any]) -> Any:
    import copy

    acc = copy.deepcopy(zero)
    for x in part:
        acc = f(acc, x)
    return acc


class ParallelCollectionRDD(RDD):
    """Leaf RDD over driver-provided data, pre-sliced into partitions."""

    def __init__(self, ctx: "SparkContext", slices: list[list[Any]]) -> None:
        super().__init__(ctx, len(slices), deps=[])
        self._slices = slices

    def compute(self, split: int) -> list[Any]:
        return list(self._slices[split])


class MapPartitionsRDD(RDD):
    """Narrow transformation of one parent partition."""

    def __init__(self, parent: RDD, f: Callable[[int, list[Any]], Iterable[Any]]) -> None:
        super().__init__(parent.ctx, parent.num_partitions, deps=[NarrowDependency(parent)])
        self._parent = parent
        self._f = f

    def compute(self, split: int) -> list[Any]:
        return list(self._f(split, self._parent.partition(split)))


class UnionRDD(RDD):
    """Concatenation: child partitions are the parents' partitions in order."""

    def __init__(self, ctx: "SparkContext", parents: list[RDD]) -> None:
        total = sum(p.num_partitions for p in parents)
        super().__init__(ctx, total, deps=[NarrowDependency(p) for p in parents])
        self._parents = parents

    def compute(self, split: int) -> list[Any]:
        for parent in self._parents:
            if split < parent.num_partitions:
                return parent.partition(split)
            split -= parent.num_partitions
        raise IndexError("partition index out of range")


class CoalescedRDD(RDD):
    """Merge adjacent parent partitions into fewer child partitions."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.ctx, num_partitions, deps=[NarrowDependency(parent)])
        self._parent = parent

    def compute(self, split: int) -> list[Any]:
        from repro.util.partition import block_bounds

        lo, hi = block_bounds(self._parent.num_partitions, self.num_partitions, split)
        out: list[Any] = []
        for p in range(lo, hi):
            out.extend(self._parent.partition(p))
        return out


class ZippedRDD(RDD):
    """Positional pairing of two equally-partitioned RDDs."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx,
            left.num_partitions,
            deps=[NarrowDependency(left), NarrowDependency(right)],
        )
        self._left = left
        self._right = right

    def compute(self, split: int) -> list[Any]:
        a = self._left.partition(split)
        b = self._right.partition(split)
        if len(a) != len(b):
            raise ValueError(
                f"zip partition {split}: sizes differ ({len(a)} vs {len(b)})"
            )
        return list(zip(a, b))


class CartesianRDD(RDD):
    """Cross product: child partition (i, j) = left part i × right part j."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx,
            left.num_partitions * right.num_partitions,
            deps=[NarrowDependency(left), NarrowDependency(right)],
        )
        self._left = left
        self._right = right

    def compute(self, split: int) -> list[Any]:
        li, ri = divmod(split, self._right.num_partitions)
        return [
            (a, b)
            for a in self._left.partition(li)
            for b in self._right.partition(ri)
        ]


class ShuffledRDD(RDD):
    """A wide transformation: hash/range-routed, per-key combined pairs.

    The map side buckets (and optionally pre-combines) every parent
    partition's pairs into a :class:`~repro.spark.shuffle.ShuffleBlockStore`;
    the reduce side fetches and merges bucket streams in map-task order.
    All shuffle traffic is counted in ``ctx.metrics`` so tests and
    benchmarks can observe the effect of map-side combining.

    Under a fault plan the store is checksummed, and a fetch that
    detects corruption triggers **lineage recovery**: the owning map
    task is recomputed from ``self._parent`` (recursing up the DAG as
    needed, stopping at persisted/checkpointed RDDs) and its blocks
    re-stored — real Spark's lost-partition model.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Any,
        create: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        *,
        map_side_combine: bool,
        flatten_values: bool = False,
    ) -> None:
        super().__init__(
            parent.ctx, partitioner.num_partitions, deps=[ShuffleDependency(parent, partitioner)]
        )
        self.partitioner = partitioner  # output is laid out by construction
        self._parent = parent
        self._partitioner = partitioner
        self._create = create
        self._merge_value = merge_value
        self._merge_combiners = merge_combiners
        self._map_side_combine = map_side_combine
        self._flatten_values = flatten_values
        self._shuffle_lock = threading.Lock()
        self._recompute_lock = threading.Lock()
        self._store: Any = None
        self._shuffle_index: int | None = None
        self._map_job_id: int | None = None

    def _map_one(self, _i: int, part: list[Any]) -> list[list[tuple[Any, Any]]]:
        """The map-task body: route (and optionally pre-combine) one parent
        partition's pairs into one bucket per reduce partition. Also the
        unit of lineage recovery — a lost map output is rebuilt by
        re-running this on the recomputed parent partition."""
        nparts = self.num_partitions
        partitioner = self._partitioner
        buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(nparts)]
        if self._map_side_combine:
            combined: dict[int, dict[Any, Any]] = {}
            order: list[list[Any]] = [[] for _ in range(nparts)]
            for key, value in part:
                dest = partitioner.partition(key)
                dest_map = combined.setdefault(dest, {})
                if key in dest_map:
                    dest_map[key] = self._merge_value(dest_map[key], value)
                else:
                    dest_map[key] = self._create(value)
                    order[dest].append(key)
            for dest, dest_map in combined.items():
                buckets[dest] = [(k, dest_map[k]) for k in order[dest]]
        else:
            for key, value in part:
                buckets[partitioner.partition(key)].append((key, value))
        return buckets

    def _materialize_shuffle(self) -> Any:
        """Run the map side once, into a block store keyed by map task."""
        with self._shuffle_lock:
            if self._store is not None:
                return self._store
            ctx = self.ctx
            job_id, outputs = ctx._execute_job(self._parent, self._map_one)
            shipped = sum(len(bucket) for task in outputs for bucket in task)
            ctx.metrics.shuffle_records += shipped
            ctx.metrics.shuffles += 1
            # The shuffle is numbered *after* its map job (nested parent
            # shuffles materialize — and number themselves — during it)
            # but *before* any put: spills fire during puts and their
            # fault events are addressed by (shuffle, spill file).
            index = ctx._next_shuffle_index()
            store = ctx._create_shuffle_store(
                index, self._parent.num_partitions, self.num_partitions
            )
            for map_task, buckets in enumerate(outputs):
                store.put(map_task, buckets)
            self._map_job_id = job_id
            self._shuffle_index = index
            # Inject any scheduled resident-block corruption — after the
            # blocks exist, before any fetch.
            ctx._inject_shuffle_corruption(store, index)
            self._store = store
            return store

    def _recover_map_output(self, store: Any, map_task: int) -> None:
        """Recompute one lost/corrupt map output from the lineage DAG.

        Serialized so concurrent reduce tasks hitting the same bad block
        recover it once; the parent-partition recursion stops at
        persisted/checkpointed RDDs (recomputation barriers) and cascades
        through upstream shuffles' own recovery if *their* blocks are
        also corrupt. The rebuilt map task's accumulator updates are
        discarded by the exactly-once commit (its logical task already
        committed during materialization), keeping diagnostics
        bit-identical.
        """
        from repro.spark.accumulators import task_updates
        from repro.trace.tracer import get_tracer

        ctx = self.ctx
        with self._recompute_lock:
            bad = store.corrupted_blocks(map_task)
            if not bad:
                return  # another task already recovered this map output
            tracer = get_tracer()
            ctx.metrics.bump("spark.corrupt_blocks_detected", len(bad))
            tracer.instant(
                "corrupt_block", category="spark.fault",
                shuffle=self._shuffle_index, map_task=map_task, blocks=len(bad),
            )
            with task_updates() as sink:
                buckets = self._map_one(map_task, self._parent.partition(map_task))
            assert self._map_job_id is not None
            ctx._commit_task((self._map_job_id, map_task), sink)
            # pin: a recomputed output must stay resident — re-spilling it
            # could land it back on the fault that just destroyed it.
            store.put(map_task, buckets, pin=True)
            ctx.metrics.bump("spark.recomputed_partitions")
            if ctx.fault_report is not None:
                ctx.fault_report.record_recompute(self._shuffle_index or 0, map_task)
            tracer.instant(
                "recompute", category="spark.fault",
                shuffle=self._shuffle_index, map_task=map_task,
            )

    def _recover_spill_file(self, store: Any, err: LostSpillFileError) -> None:
        """Recompute every map output that lived in a lost spill run.

        Whole-file granularity: one bad byte poisons the run, so all of
        ``err.map_tasks`` are rebuilt from lineage (honoring
        persist()/checkpoint() barriers, exactly like resident-block
        recovery) and re-stored *pinned* resident. If the fault plan
        schedules repeat attempts against this file, each one destroys
        the recomputed data again; more than ``ctx.max_task_retries``
        such failures escalates to :class:`SparkJobFailedError` carrying
        the fault report that names the lost file.
        """
        from repro.spark.accumulators import task_updates
        from repro.spark.faults import SparkJobFailedError
        from repro.trace.tracer import get_tracer

        ctx = self.ctx
        shuffle = self._shuffle_index or 0
        with self._recompute_lock:
            if not store.file_needs_recovery(err.slot):
                return  # another reduce task already recovered this run
            tracer = get_tracer()
            ctx.metrics.bump("spark.lost_spill_files")
            if ctx.fault_report is not None:
                ctx.fault_report.record_spill_loss(shuffle, err.slot, err.reason, err.path)
            tracer.instant(
                "lost_spill_file", category="spark.fault",
                shuffle=shuffle, file=err.slot,
                reason=err.reason, map_tasks=len(err.map_tasks),
            )
            failures = 1  # the loss itself
            while ctx._spill_refire(shuffle, err.slot):
                failures += 1
                if ctx.fault_report is not None:
                    ctx.fault_report.record_retry(self._map_job_id or 0, err.map_tasks[0])
                if failures > ctx.max_task_retries:
                    assert ctx.fault_report is not None
                    raise SparkJobFailedError(
                        self._map_job_id or 0,
                        err.map_tasks[0],
                        failures,
                        ctx.fault_report,
                    ) from err
            assert self._map_job_id is not None
            for map_task in err.map_tasks:
                with task_updates() as sink:
                    buckets = self._map_one(map_task, self._parent.partition(map_task))
                ctx._commit_task((self._map_job_id, map_task), sink)
                store.put(map_task, buckets, pin=True)
                ctx.metrics.bump("spark.recomputed_partitions")
                if ctx.fault_report is not None:
                    ctx.fault_report.record_recompute(shuffle, map_task)
            store.mark_file_recovered(err.slot)
            ctx.metrics.bump("spark.spill_recoveries")
            if ctx.fault_report is not None:
                ctx.fault_report.record_spill_recovery(shuffle, err.slot)
            tracer.instant(
                "spill_recovery", category="spark.fault",
                shuffle=shuffle, file=err.slot, map_tasks=len(err.map_tasks),
            )

    def compute(self, split: int) -> list[Any]:
        store = self._materialize_shuffle()
        # The merge restarts from scratch after recovery: merge functions
        # never mutate stored blocks, so a clean re-read over the healed
        # store is bit-identical to an undisturbed pass.
        while True:
            try:
                return self._merge_split(store, split)
            except CorruptShuffleBlockError as err:
                self._recover_map_output(store, err.map_task)
            except LostSpillFileError as err:
                self._recover_spill_file(store, err)

    def _merge_split(self, store: Any, split: int) -> list[Any]:
        """One clean merge pass over reduce partition ``split``."""
        merged: dict[Any, Any] = {}
        order: list[Any] = []
        for _map_task, block in store.iter_blocks(split):
            for key, value in block:
                if key in merged:
                    if self._map_side_combine:
                        merged[key] = self._merge_combiners(merged[key], value)
                    else:
                        merged[key] = self._merge_value(merged[key], value)
                else:
                    merged[key] = value if self._map_side_combine else self._create(value)
                    order.append(key)
        if self._flatten_values:
            return [(k, v) for k in order for v in merged[k]]
        return [(k, merged[k]) for k in order]
