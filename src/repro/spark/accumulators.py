"""Accumulators: write-only task-side counters, readable on the driver.

Used by pipelines for data-quality tallies (e.g. "rows dropped by
cleaning"), which is exactly the cleaning-stage bookkeeping the
assignment's workflow rubric asks for.

Under fault injection the engine retries failed task attempts and
recomputes lost partitions, so a naive accumulator would double-count —
real Spark's classic footgun. The scheduler therefore runs each task
attempt inside :func:`task_updates`, which buffers the attempt's
``add`` calls in a thread-local sink; only the attempt that *completes
a logical task for the first time* gets its sink committed
(``SparkContext._commit_task``). Failed attempts, losing speculative
twins, and lineage recomputations of already-committed tasks are
discarded unapplied — giving exactly-once semantics and bit-identical
accumulator values with or without faults. Every scheduler-managed task
runs inside a sink (fault plan or not), and the scheduler commits sinks
in **partition order** at job end — so accumulator folds are applied in
the same order under every executor backend (serial, thread, process),
keeping even non-commutative or floating-point folds bit-identical
across backends. ``add`` outside any managed task applies directly.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["Accumulator"]

_TASK_LOCAL = threading.local()

#: Driver-side id -> Accumulator map, so updates buffered in a *worker
#: process* can travel home as plain ``(id, amount)`` pairs and be
#: applied to the driver's objects (the worker's copies are forked
#: clones that die with it). Weak values: an accumulator nobody can
#: read any more has no one to report to.
_ACC_IDS = itertools.count(1)
_REGISTRY: "weakref.WeakValueDictionary[int, Accumulator]" = weakref.WeakValueDictionary()
_REGISTRY_LOCK = threading.Lock()


class _Sink:
    """The buffered ``add`` calls of one in-flight task attempt."""

    __slots__ = ("updates",)

    def __init__(self) -> None:
        self.updates: list[tuple["Accumulator", Any]] = []


@contextmanager
def task_updates() -> Iterator[_Sink]:
    """Buffer this thread's ``Accumulator.add`` calls for the block.

    Sinks nest (a task body can trigger an inline nested job, whose own
    attempt pushes its own sink); each ``add`` lands in the innermost
    one. The caller decides the buffered updates' fate: apply them via
    :func:`commit_updates` exactly when the attempt's logical task
    commits, or drop the sink to discard them.
    """
    stack = getattr(_TASK_LOCAL, "sinks", None)
    if stack is None:
        stack = _TASK_LOCAL.sinks = []
    sink = _Sink()
    stack.append(sink)
    try:
        yield sink
    finally:
        stack.pop()


def commit_updates(sink: _Sink) -> None:
    """Apply a completed attempt's buffered updates to their accumulators."""
    for acc, amount in sink.updates:
        acc._apply(amount)


def encode_updates(sink: _Sink) -> list[tuple[int, Any]]:
    """A sink's updates as picklable ``(accumulator_id, amount)`` pairs.

    The process-backend return path: a worker can't ship the (forked
    copy of an) :class:`Accumulator` home, but the id survives the trip
    and resolves to the driver's object in :func:`apply_encoded_updates`.
    """
    return [(acc.id, amount) for acc, amount in sink.updates]


def apply_encoded_updates(pairs: list[tuple[int, Any]]) -> None:
    """Apply :func:`encode_updates` pairs to the driver's accumulators.

    Ids whose accumulator has been garbage-collected are skipped — there
    is no one left to observe the value.
    """
    for acc_id, amount in pairs:
        with _REGISTRY_LOCK:
            acc = _REGISTRY.get(acc_id)
        if acc is not None:
            acc._apply(amount)


class Accumulator:
    """Thread-safe fold cell: tasks ``add``, the driver reads ``value``.

    ``op`` defaults to addition; any associative, commutative binary
    callable works (the usual accumulator restriction, because task
    completion order is nondeterministic).
    """

    def __init__(self, initial: Any = 0, op: Callable[[Any, Any], Any] | None = None) -> None:
        self._value = initial
        self._op = op or (lambda a, b: a + b)
        self._lock = threading.Lock()
        self.id = next(_ACC_IDS)
        with _REGISTRY_LOCK:
            _REGISTRY[self.id] = self

    def add(self, amount: Any) -> None:
        """Fold ``amount`` into the accumulator (callable from any task).

        Inside a scheduler-managed task attempt the update is buffered
        and committed exactly once per logical task; outside one it
        applies immediately.
        """
        stack = getattr(_TASK_LOCAL, "sinks", None)
        if stack:
            stack[-1].updates.append((self, amount))
            return
        self._apply(amount)

    def _apply(self, amount: Any) -> None:
        with self._lock:
            self._value = self._op(self._value, amount)

    @property
    def value(self) -> Any:
        """Current folded value (driver-side read)."""
        with self._lock:
            return self._value

    def reset(self, value: Any = 0) -> None:
        """Driver-side reset between jobs."""
        with self._lock:
            self._value = value
