"""Accumulators: write-only task-side counters, readable on the driver.

Used by pipelines for data-quality tallies (e.g. "rows dropped by
cleaning"), which is exactly the cleaning-stage bookkeeping the
assignment's workflow rubric asks for.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["Accumulator"]


class Accumulator:
    """Thread-safe fold cell: tasks ``add``, the driver reads ``value``.

    ``op`` defaults to addition; any associative, commutative binary
    callable works (the usual accumulator restriction, because task
    completion order is nondeterministic).
    """

    def __init__(self, initial: Any = 0, op: Callable[[Any, Any], Any] | None = None) -> None:
        self._value = initial
        self._op = op or (lambda a, b: a + b)
        self._lock = threading.Lock()

    def add(self, amount: Any) -> None:
        """Fold ``amount`` into the accumulator (callable from any task)."""
        with self._lock:
            self._value = self._op(self._value, amount)

    @property
    def value(self) -> Any:
        """Current folded value (driver-side read)."""
        with self._lock:
            return self._value

    def reset(self, value: Any = 0) -> None:
        """Driver-side reset between jobs."""
        with self._lock:
            self._value = value
