"""Lineage and stage introspection — the teaching lens on RDD plans.

The course behind the pipeline assignment is about *designing* scalable
MapReduce/Spark algorithms, so students must see where their lineage
graphs introduce shuffles. :func:`lineage` walks the DAG;
:func:`execution_stages` groups it into shuffle-bounded stages the way
Spark's scheduler would, letting tests assert e.g. "this pipeline is two
stages, not four".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spark.rdd import RDD, NarrowDependency, ShuffleDependency

__all__ = ["lineage", "execution_stages", "shuffle_depth", "recomputation_frontier", "Stage"]


def lineage(rdd: RDD) -> list[RDD]:
    """All ancestor RDDs (including ``rdd``), deduplicated, leaves first."""
    seen: dict[int, RDD] = {}

    def visit(node: RDD) -> None:
        if node.id in seen:
            return
        for dep in node.deps:
            visit(dep.parent)
        seen[node.id] = node

    visit(rdd)
    return list(seen.values())


@dataclass
class Stage:
    """A maximal shuffle-free pipeline of RDDs, scheduled as one unit."""

    rdds: list[RDD]

    @property
    def names(self) -> list[str]:
        """Class names of member RDDs, leaf-most first."""
        return [type(r).__name__ for r in self.rdds]


def shuffle_depth(rdd: RDD) -> int:
    """Number of shuffles on the deepest path from any leaf to ``rdd``."""
    memo: dict[int, int] = {}

    def depth(node: RDD) -> int:
        if node.id in memo:
            return memo[node.id]
        d = 0
        for dep in node.deps:
            if isinstance(dep, ShuffleDependency):
                d = max(d, depth(dep.parent) + 1)
            elif isinstance(dep, NarrowDependency):
                d = max(d, depth(dep.parent))
        memo[node.id] = d
        return d

    return depth(rdd)


def recomputation_frontier(rdd: RDD) -> list[RDD]:
    """The RDDs a lost partition of ``rdd`` could be rebuilt from.

    Fault recovery recomputes up the lineage until it hits a
    *recomputation barrier* — a persisted or checkpointed RDD (or a
    leaf, which always holds its data). This returns those frontier
    nodes, deduplicated, leaf-most first: the teaching lens on why
    ``checkpoint()`` exists — a checkpointed RDD both joins the
    frontier *and* truncates everything behind it out of the walk.
    """
    frontier: dict[int, RDD] = {}

    def visit(node: RDD) -> None:
        if node.id in frontier:
            return
        if node.is_recompute_barrier or not node.deps:
            frontier[node.id] = node
            return
        for dep in node.deps:
            visit(dep.parent)

    for dep in rdd.deps:
        visit(dep.parent)
    if not rdd.deps:
        frontier[rdd.id] = rdd
    return list(frontier.values())


def execution_stages(rdd: RDD) -> list[Stage]:
    """Group the lineage of ``rdd`` into shuffle-bounded stages.

    RDDs at the same *shuffle depth* (number of shuffles between them
    and the leaves) execute in the same stage, so for any plan
    ``len(execution_stages(r)) == shuffle_depth(r) + 1`` — the count the
    course uses to reason about a pipeline's communication rounds.
    Stages are returned leaf-most first.
    """
    nodes = lineage(rdd)
    memo: dict[int, int] = {}

    def depth(node: RDD) -> int:
        if node.id in memo:
            return memo[node.id]
        d = 0
        for dep in node.deps:
            if isinstance(dep, ShuffleDependency):
                d = max(d, depth(dep.parent) + 1)
            elif isinstance(dep, NarrowDependency):
                d = max(d, depth(dep.parent))
        memo[node.id] = d
        return d

    max_depth = max(depth(n) for n in nodes)
    stages = [Stage(rdds=[]) for _ in range(max_depth + 1)]
    for node in nodes:
        stages[depth(node)].rdds.append(node)
    return stages
