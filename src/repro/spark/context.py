"""The driver-side entry point: job execution, data ingest, shared vars.

A :class:`SparkContext` plays driver *and* cluster: ``run_job`` executes
one task per partition on a thread pool (a fresh pool per job, so nested
jobs — shuffles materializing inside tasks — can never starve). The
:class:`JobMetrics` counters make the engine's communication behaviour
observable, which is what the pipeline assignment grades students on
discussing.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.spark.accumulators import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.rdd import RDD, ParallelCollectionRDD
from repro.trace.tracer import get_tracer
from repro.util.partition import block_partition
from repro.util.validation import require_positive_int

__all__ = ["SparkContext", "JobMetrics"]


@dataclass
class JobMetrics:
    """Observable engine counters (reset with :meth:`SparkContext.reset_metrics`)."""

    jobs: int = 0
    tasks: int = 0
    shuffles: int = 0
    shuffle_records: int = 0
    partitions_cached: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class SparkContext:
    """Factory for RDDs plus the scheduler that runs their jobs."""

    def __init__(self, num_workers: int = 4, default_partitions: int | None = None) -> None:
        self.num_workers = require_positive_int("num_workers", num_workers)
        self.default_partitions = default_partitions or num_workers
        require_positive_int("default_partitions", self.default_partitions)
        self.metrics = JobMetrics()
        self._rdd_counter = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> RDD:
        """Slice driver data into a partitioned RDD."""
        self._check_alive()
        items = list(data)
        nparts = num_partitions or self.default_partitions
        require_positive_int("num_partitions", nparts)
        slices = [list(items[r.start : r.stop]) for r in block_partition(len(items), nparts)]
        return ParallelCollectionRDD(self, slices)

    def text_file(self, path: str | Path, num_partitions: int | None = None) -> RDD:
        """One element per line of a text file (the HDFS-ingest stand-in)."""
        lines = Path(path).read_text().splitlines()
        return self.parallelize(lines, num_partitions)

    def empty_rdd(self) -> RDD:
        """An RDD with a single empty partition."""
        return ParallelCollectionRDD(self, [[]])

    # ------------------------------------------------------------------
    # shared variables
    # ------------------------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        """Snapshot ``value`` for read-only task access."""
        self._check_alive()
        return Broadcast(value)

    def accumulator(self, initial: Any = 0, op: Callable[[Any, Any], Any] | None = None) -> Accumulator:
        """Create a task-writable, driver-readable fold cell."""
        self._check_alive()
        return Accumulator(initial, op)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_job(self, rdd: RDD, task_fn: Callable[[int, list[Any]], Any]) -> list[Any]:
        """Run ``task_fn(partition_index, partition_data)`` over all partitions.

        Results are returned in partition order. A fresh thread pool per
        job keeps nested jobs deadlock-free and mirrors Spark's
        job-level scheduling.
        """
        self._check_alive()
        self.metrics.jobs += 1
        self.metrics.tasks += rdd.num_partitions
        tracer = get_tracer()
        with tracer.span(
            "job", category="spark", scope="spark.driver",
            rdd=rdd.id, partitions=rdd.num_partitions,
        ):
            if rdd.num_partitions == 1:
                return [self._run_task(tracer, task_fn, rdd, 0)]
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                futures = [
                    pool.submit(lambda i=i: self._run_task(tracer, task_fn, rdd, i))
                    for i in range(rdd.num_partitions)
                ]
                return [f.result() for f in futures]

    @staticmethod
    def _run_task(tracer: Any, task_fn: Callable[[int, list[Any]], Any], rdd: RDD, i: int) -> Any:
        if not tracer.enabled:
            return task_fn(i, rdd.partition(i))
        # Each partition gets its own logical-clock lane; nested jobs spawned
        # inside a task inherit it through the thread-local scope.
        with tracer.scope(f"spark.p{i}"):
            with tracer.span("task", category="spark", rdd=rdd.id, partition=i):
                return task_fn(i, rdd.partition(i))

    # ------------------------------------------------------------------
    # lifecycle / bookkeeping
    # ------------------------------------------------------------------
    def reset_metrics(self) -> None:
        """Zero the engine counters (between benchmark phases)."""
        self.metrics = JobMetrics()

    def stop(self) -> None:
        """Refuse further work (catching use-after-stop bugs in pipelines)."""
        self._stopped = True

    def _check_alive(self) -> None:
        if self._stopped:
            raise RuntimeError("SparkContext has been stopped")

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
