"""The driver-side entry point: job execution, data ingest, shared vars.

A :class:`SparkContext` plays driver *and* cluster: ``run_job`` executes
one task per partition on a pluggable executor backend
(:mod:`repro.core.executor`): ``backend="thread"`` (the default — a
fresh pool per job, so nested jobs — shuffles materializing inside
tasks — can never starve), ``"serial"``, or ``"process"`` (fork-based
worker processes for real CPU parallelism; see ``docs/executors.md``).
Results, accumulator values, and fault recovery are bit-identical
across all three. The
:class:`JobMetrics` counters make the engine's communication behaviour
observable, which is what the pipeline assignment grades students on
discussing.

With a :class:`~repro.spark.faults.SparkFaultPlan` installed the
scheduler becomes fault-tolerant, mirroring real Spark's recovery
model:

- injected task failures and worker blacklistings are retried with
  bounded deterministic backoff (``max_task_retries``), each retry on
  the next virtual worker;
- injected stragglers trigger a speculative copy on another worker,
  which deterministically wins (the abandoned original is parked);
- corrupted shuffle/broadcast payloads are caught by checksums in
  :mod:`repro.spark.shuffle` / :mod:`repro.spark.broadcast` and healed
  by lineage recomputation / master-copy refetch.

Accumulator updates are buffered per attempt and committed exactly once
per logical task (``(job, partition)``), so results *and* diagnostics
are bit-identical to the fault-free run. Without a plan the scheduler
takes the original code path (one ``is None`` test per task).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.core.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrashError,
)
from repro.spark.accumulators import (
    Accumulator,
    apply_encoded_updates,
    commit_updates,
    encode_updates,
    task_updates,
)
from repro.spark.broadcast import Broadcast
from repro.spark.faults import (
    BlacklistedWorker,
    SparkFaultPlan,
    SparkFaultReport,
    SparkInjectionRecord,
    SparkJobFailedError,
    TaskFailure,
)
from repro.spark.rdd import RDD, ParallelCollectionRDD, ShuffledRDD
from repro.spark.shuffle import ShuffleBlockStore, SpillFileInfo, damage_spill_file
from repro.trace.tracer import get_tracer
from repro.util.backoff import BackoffPolicy
from repro.util.partition import block_partition
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["SparkContext", "JobMetrics", "SparkJobCancelled"]


class SparkJobCancelled(RuntimeError):
    """A job observed its context's cancel token and stopped cooperatively.

    Raised at a task boundary, *before* the job's accumulator sinks are
    committed — so a cancelled job leaves no partial accumulator state
    behind (the rollback is that the commit never happens), and the
    context's idempotent :meth:`SparkContext.stop` removes any spill
    directory the aborted job materialized.
    """

    def __init__(self, context: str, job: int | None = None, partition: int | None = None) -> None:
        where = ""
        if job is not None:
            where = f" (job {job})" if partition is None else f" (job {job}, partition {partition})"
        super().__init__(f"{context} was cancelled{where}")
        self.context = context
        self.job = job
        self.partition = partition

_CONTEXT_IDS = itertools.count(1)


@dataclass
class JobMetrics:
    """Observable engine counters (reset with :meth:`SparkContext.reset_metrics`).

    Fault-tolerance counters live in :attr:`extra` under ``spark.*``
    keys (see ``docs/observability.md``) and are bumped via
    :meth:`bump`, which is thread-safe — recovery happens on task
    threads.
    """

    jobs: int = 0
    tasks: int = 0
    shuffles: int = 0
    shuffle_records: int = 0
    partitions_cached: int = 0
    extra: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, key: str, n: int = 1) -> None:
        """Thread-safely add ``n`` to the ``extra[key]`` counter."""
        with self._lock:
            self.extra[key] = self.extra.get(key, 0) + n


class SparkContext:
    """Factory for RDDs plus the scheduler that runs their jobs.

    Usable as a context manager (``with SparkContext() as sc:``);
    :meth:`stop` is idempotent and leaving the ``with`` block calls it.

    ``fault_plan`` installs deterministic fault injection + recovery
    (see :mod:`repro.spark.faults`): ``max_task_retries`` bounds per-task
    retries and ``retry_backoff`` seeds the exponential backoff between
    them. ``fault_report`` then carries the structured evidence of what
    fired and what was recovered.

    ``cancel_token`` (anything with ``is_set()``, e.g. a
    ``threading.Event``; one is created when omitted so :meth:`cancel`
    always works) makes every job cooperatively cancellable: the
    scheduler checks the token at each task boundary and raises
    :class:`SparkJobCancelled` once it is set — before any accumulator
    sink commits, so a cancelled job rolls back to the pre-job
    accumulator state, and :meth:`stop` reclaims any spill directory it
    left behind. This is the hook ``repro.serve`` uses for per-job
    deadlines and wall timeouts.

    ``memory_budget`` (bytes, ``None`` = unbounded) turns the shuffle
    tier out-of-core: each shuffle's block store spills sorted,
    CRC-checksummed runs to a context-private temp directory whenever
    its resident estimate exceeds the budget, and the reduce side k-way
    merges the runs back (results stay bit-identical to the in-memory
    run). ``spill_compress`` zlib-compresses spilled blocks;
    ``verify_reads`` turns on checksum verification of *resident*
    shuffle blocks independently of any fault plan; ``spill_dir``
    overrides where the private spill directory is created. The spill
    directory is removed by the idempotent :meth:`stop` — on success,
    after a failed job, and on double-stop alike.
    """

    def __init__(
        self,
        num_workers: int = 4,
        default_partitions: int | None = None,
        *,
        name: str | None = None,
        backend: str = "thread",
        fault_plan: SparkFaultPlan | None = None,
        max_task_retries: int = 3,
        retry_backoff: float = 0.001,
        memory_budget: int | None = None,
        spill_compress: bool = False,
        verify_reads: bool = False,
        spill_dir: str | Path | None = None,
        cancel_token: Any | None = None,
        executor: Executor | None = None,
    ) -> None:
        self.num_workers = require_positive_int("num_workers", num_workers)
        self.default_partitions = default_partitions or num_workers
        require_positive_int("default_partitions", self.default_partitions)
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            # Spark tasks close over the whole lineage DAG (RDDs, shuffle
            # stores, broadcasts) — only fork can ship that to workers.
            raise ValueError(
                "backend='process' requires the 'fork' start method, which this "
                "platform does not offer; use backend='thread'"
            )
        self.backend = backend
        self._driver_pid = os.getpid()
        self.name = name or f"SparkContext-{next(_CONTEXT_IDS)}"
        self.metrics = JobMetrics()
        self._rdd_counter = 0
        self._stopped = False
        # --- fault tolerance state (all inert when fault_plan is None) ---
        self._fault_plan = fault_plan
        self.max_task_retries = require_nonnegative_int("max_task_retries", max_task_retries)
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.retry_backoff = retry_backoff
        self._retry_policy = BackoffPolicy(retry_backoff)
        self.fault_report: SparkFaultReport | None = (
            SparkFaultReport(plan=fault_plan) if fault_plan is not None else None
        )
        self._job_lock = threading.Lock()
        self._job_counter = 0
        self._shuffle_counter = 0
        self._broadcast_counter = 0
        self._blacklisted: set[int] = set()
        self._blacklist_lock = threading.Lock()
        self._committed: set[tuple[int, int]] = set()
        self._commit_lock = threading.Lock()
        # --- out-of-core shuffle state ---
        if memory_budget is not None:
            require_positive_int("memory_budget", memory_budget)
        self.memory_budget = memory_budget
        self.spill_compress = spill_compress
        self.verify_reads = verify_reads
        self._spill_dir_base = Path(spill_dir) if spill_dir is not None else None
        self._spill_root: Path | None = None
        self._spill_lock = threading.Lock()
        self._spill_fired: dict[tuple[int, int], int] = {}
        # --- cooperative cancellation (the serve tier's hook) ---
        self._cancel_token = cancel_token if cancel_token is not None else threading.Event()
        # --- process-backend worker pool ---
        # One persistent ProcessExecutor per context (created lazily on
        # the first process-backend job, reused warm across jobs, closed
        # by stop()) — or a caller-shared pool (e.g. the serve tier's),
        # which outlives this context and is the caller's to close.
        if executor is not None and not isinstance(executor, Executor):
            raise TypeError(f"executor must be an Executor, got {type(executor).__name__}")
        self._executor = executor
        self._owns_executor = executor is None

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> RDD:
        """Slice driver data into a partitioned RDD."""
        self._check_alive()
        items = list(data)
        nparts = num_partitions or self.default_partitions
        require_positive_int("num_partitions", nparts)
        slices = [list(items[r.start : r.stop]) for r in block_partition(len(items), nparts)]
        return ParallelCollectionRDD(self, slices)

    def text_file(self, path: str | Path, num_partitions: int | None = None) -> RDD:
        """One element per line of a text file (the HDFS-ingest stand-in)."""
        lines = Path(path).read_text().splitlines()
        return self.parallelize(lines, num_partitions)

    def empty_rdd(self) -> RDD:
        """An RDD with a single empty partition."""
        return ParallelCollectionRDD(self, [[]])

    # ------------------------------------------------------------------
    # shared variables
    # ------------------------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        """Snapshot ``value`` for read-only task access.

        Under a fault plan, broadcasts are numbered in creation order;
        a scheduled ``broadcast`` event corrupts the shipped payload
        here, and the checksum on first task access refetches the
        driver's master copy.
        """
        self._check_alive()
        if self._fault_plan is None:
            return Broadcast(value)
        with self._job_lock:
            index = self._broadcast_counter
            self._broadcast_counter += 1
        bc = Broadcast(value, on_refetch=self._on_broadcast_refetch)
        event = self._fault_plan.broadcast_event(index)
        if event is not None:
            bc._corrupt()
            self.metrics.bump("spark.injected_faults")
            assert self.fault_report is not None
            self.fault_report.record_injection(SparkInjectionRecord("broadcast", index, 0))
            get_tracer().instant(
                "fault.broadcast", category="spark.fault", scope="spark.driver", index=index
            )
        return bc

    def _on_broadcast_refetch(self) -> None:
        self.metrics.bump("spark.broadcast_refetches")
        if self.fault_report is not None:
            self.fault_report.record_broadcast_refetch()
        get_tracer().instant("broadcast_refetch", category="spark.fault")

    def accumulator(self, initial: Any = 0, op: Callable[[Any, Any], Any] | None = None) -> Accumulator:
        """Create a task-writable, driver-readable fold cell."""
        self._check_alive()
        return Accumulator(initial, op)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_job(self, rdd: RDD, task_fn: Callable[[int, list[Any]], Any]) -> list[Any]:
        """Run ``task_fn(partition_index, partition_data)`` over all partitions.

        Results are returned in partition order. The context's
        ``backend`` picks the executor: ``"thread"`` (default — a fresh
        pool per job keeps nested jobs deadlock-free), ``"serial"``, or
        ``"process"`` (fork-based worker processes; see
        ``docs/executors.md``). All three produce bit-identical results
        and accumulator values.
        """
        _job_id, results = self._execute_job(rdd, task_fn)
        return results

    def _execute_job(
        self, rdd: RDD, task_fn: Callable[[int, list[Any]], Any]
    ) -> tuple[int, list[Any]]:
        """Run a job and also return its id (jobs are numbered in
        submission order — the coordinate task-level fault events use)."""
        self._check_alive()
        self._check_cancelled()
        with self._job_lock:
            job_id = self._job_counter
            self._job_counter += 1
        self.metrics.jobs += 1
        self.metrics.tasks += rdd.num_partitions
        backend = self.backend
        if backend == "process" and os.getpid() != self._driver_pid:
            # A nested job inside a forked worker (daemonic processes
            # can't have children): compute inline instead.
            backend = "serial"
        tracer = get_tracer()
        with tracer.span(
            "job", category="spark", scope="spark.driver",
            rdd=rdd.id, partitions=rdd.num_partitions, backend=backend,
        ):
            if backend == "process":
                return job_id, self._execute_job_process(tracer, task_fn, rdd, job_id)
            executor = (
                SerialExecutor() if backend == "serial" else ThreadExecutor(self.num_workers)
            )
            outcomes = executor.map(
                lambda i, _item: self._run_task(tracer, task_fn, rdd, i, job_id),
                range(rdd.num_partitions),
            )
            # Commit accumulator sinks in partition order — deterministic
            # and identical across backends (see repro.spark.accumulators).
            results: list[Any] = []
            for i, (result, sink) in enumerate(outcomes):
                self._commit_task((job_id, i), sink)
                results.append(result)
            return job_id, results

    def _run_task(
        self,
        tracer: Any,
        task_fn: Callable[[int, list[Any]], Any],
        rdd: RDD,
        i: int,
        job_id: int,
    ) -> tuple[Any, Any]:
        """One logical task on the serial/thread path: returns
        ``(result, accumulator_sink)``; the job loop commits sinks."""
        self._check_cancelled(job_id, i)
        if self._fault_plan is None:
            # The fault-free hot path: one is-None test plus the sink.
            with task_updates() as sink:
                if not tracer.enabled:
                    return task_fn(i, rdd.partition(i)), sink
                # Each partition gets its own logical-clock lane; nested jobs
                # spawned inside a task inherit it through the thread-local scope.
                with tracer.scope(f"spark.p{i}"):
                    with tracer.span("task", category="spark", rdd=rdd.id, partition=i):
                        return task_fn(i, rdd.partition(i)), sink
        self._resolve_task_faults(tracer, i, job_id)
        return self._execute_attempt(tracer, task_fn, rdd, i, job_id)

    def _resolve_task_faults(self, tracer: Any, partition: int, job_id: int) -> None:
        """Play out the fault plan's schedule for one logical task: retry,
        blacklist, and speculate until an attempt survives (returns) or
        retries are exhausted (raises :class:`SparkJobFailedError`).

        Pure scheduling — the surviving attempt's body is *not* run here,
        which is what lets the process backend resolve faults driver-side
        (deterministically, in partition order) and then batch-execute
        the surviving attempts in worker processes.
        """
        plan = self._fault_plan
        report = self.fault_report
        assert plan is not None and report is not None
        event = plan.task_event(job_id, partition)
        lane = f"spark.p{partition}"
        failures = 0
        attempt = 0
        while True:
            worker = self._pick_worker(partition, attempt)
            if event is not None and attempt < event.attempts:
                if event.kind == "straggle" and attempt == 0:
                    # The attempt is an injected slow node: park it on a
                    # background thread and launch a speculative copy, which
                    # runs the real body immediately on the next worker — so
                    # the copy always wins, deterministically.
                    self.metrics.bump("spark.injected_faults")
                    self.metrics.bump("spark.speculative_tasks")
                    report.record_injection(SparkInjectionRecord(
                        "straggle", job_id, partition, attempt, worker, seconds=event.seconds
                    ))
                    report.record_speculative(job_id, partition)
                    tracer.instant(
                        "fault.straggle", category="spark.fault", scope=lane,
                        job=job_id, partition=partition, worker=worker,
                        seconds=event.seconds,
                    )
                    tracer.instant(
                        "speculative_launch", category="spark.fault", scope=lane,
                        job=job_id, partition=partition,
                    )
                    threading.Thread(
                        target=time.sleep, args=(event.seconds,), daemon=True
                    ).start()
                    self.metrics.bump("spark.speculative_wins")
                    attempt += 1
                    continue
                if event.kind in ("task", "worker"):
                    injected: Exception | None = None
                    if event.kind == "task":
                        injected = TaskFailure(job_id, partition, attempt, worker)
                    elif self._blacklist(worker):
                        injected = BlacklistedWorker(worker, job_id, partition, attempt)
                        tracer.instant(
                            "fault.worker", category="spark.fault", scope=lane,
                            job=job_id, partition=partition, worker=worker,
                        )
                    # (an injected blacklist against the last live worker is
                    # suppressed: the scheduler never kills its whole cluster)
                    if injected is not None:
                        self.metrics.bump("spark.injected_faults")
                        report.record_injection(SparkInjectionRecord(
                            event.kind, job_id, partition, attempt, worker
                        ))
                        if event.kind == "task":
                            tracer.instant(
                                "fault.task", category="spark.fault", scope=lane,
                                job=job_id, partition=partition, attempt=attempt,
                            )
                        failures += 1
                        if failures > self.max_task_retries:
                            raise SparkJobFailedError(
                                job_id, partition, failures, report
                            ) from injected
                        report.record_retry(job_id, partition)
                        self.metrics.bump("spark.task_retries")
                        tracer.instant(
                            "task_retry", category="spark.fault", scope=lane,
                            job=job_id, partition=partition, attempt=attempt + 1,
                        )
                        if self.retry_backoff:
                            self._retry_policy.sleep(failures - 1)
                        attempt += 1
                        continue
            return

    def _execute_attempt(
        self,
        tracer: Any,
        task_fn: Callable[[int, list[Any]], Any],
        rdd: RDD,
        partition: int,
        job_id: int,
    ) -> tuple[Any, Any]:
        """One surviving attempt: run the body with accumulator updates
        buffered; the caller commits the sink exactly once per task."""
        with task_updates() as sink:
            if not tracer.enabled:
                result = task_fn(partition, rdd.partition(partition))
            else:
                with tracer.scope(f"spark.p{partition}"):
                    with tracer.span("task", category="spark", rdd=rdd.id, partition=partition):
                        result = task_fn(partition, rdd.partition(partition))
        return result, sink

    # ------------------------------------------------------------------
    # process backend
    # ------------------------------------------------------------------
    def _execute_job_process(
        self,
        tracer: Any,
        task_fn: Callable[[int, list[Any]], Any],
        rdd: RDD,
        job_id: int,
    ) -> list[Any]:
        """Run one job's tasks in forked worker processes.

        Three driver-side steps make the fork model safe and keep results
        bit-identical to the other backends:

        1. the lineage is *prepared* — every shuffle store and every
           persisted/checkpointed cache is materialized in the driver, so
           workers compute over inherited data instead of each privately
           (and wastefully) rebuilding driver state they can't share back;
        2. under a fault plan, each task's injected schedule is resolved
           here, serially in partition order (retries/blacklists/
           speculation are driver bookkeeping — only surviving attempt
           bodies ship to workers);
        3. task accumulator updates travel home as encoded pairs and are
           committed in partition order, same as the other backends.

        A crashed worker (:class:`WorkerCrashError`) is surfaced in
        metrics and the fault report, and its lost tasks are re-executed
        on the driver — the process-backend analogue of retry.
        """
        self._check_cancelled(job_id)
        self._prepare_lineage_for_processes(tracer, rdd)
        if self._fault_plan is not None:
            for i in range(rdd.num_partitions):
                self._resolve_task_faults(tracer, i, job_id)

        def body(i: int, _item: Any) -> tuple[Any, list[tuple[int, Any]]]:
            with task_updates() as sink:
                result = task_fn(i, rdd.partition(i))
            return result, encode_updates(sink)

        outcomes = self._process_map(tracer, body, list(range(rdd.num_partitions)))
        results: list[Any] = []
        for i, (result, pairs) in enumerate(outcomes):
            self._commit_task_encoded((job_id, i), pairs)
            results.append(result)
        return results

    def _process_map(
        self, tracer: Any, body: Callable[[int, Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """Map ``body`` over ``items`` in worker processes, recovering
        lost results on the driver when a worker dies mid-job.

        The context's executor persists across jobs (task bodies close
        over live lineage, so they ship via the executor's fork path —
        forked workers always see the driver state as of *this* job).
        """
        executor = self._process_executor()
        try:
            return executor.map(body, items)
        except WorkerCrashError as crash:
            self.metrics.bump("spark.worker_crashes")
            if self.fault_report is not None:
                self.fault_report.record_worker_crash(crash.worker, len(crash.missing))
            tracer.instant(
                "worker_crash", category="spark.fault", scope="spark.driver",
                worker=crash.worker, exitcode=crash.exitcode, lost=len(crash.missing),
            )
            outcomes = dict(crash.completed)
            for i in crash.missing:
                outcomes[i] = body(i, items[i])
            return [outcomes[i] for i in range(len(items))]

    def _process_executor(self) -> Executor:
        """The context's (or the caller-shared) process-backend executor."""
        if self._executor is None:
            self._executor = ProcessExecutor(self.num_workers, start_method="fork")
        return self._executor

    def _prepare_lineage_for_processes(self, tracer: Any, rdd: RDD) -> None:
        """Materialize all shuffle stores and persist/checkpoint caches in
        ``rdd``'s lineage, driver-side, before forking workers.

        Post-order over the dependency DAG so parents are ready before a
        child computes. Cache fills run as process maps themselves (the
        computed partitions ship home and are installed), and their
        accumulator updates are applied once — mirroring the thread
        backend, where the first task to touch a cached partition folds
        that computation's updates into its own committed sink.
        """
        seen: set[int] = set()

        def visit(r: RDD) -> None:
            if id(r) in seen:
                return
            seen.add(id(r))
            for dep in r.deps:
                visit(dep.parent)
            if isinstance(r, ShuffledRDD):
                r._materialize_shuffle()
            splits = r._uncached_splits()
            if splits:
                def fill(_i: int, split: int, r: RDD = r) -> tuple[list[Any], list[tuple[int, Any]]]:
                    with task_updates() as sink:
                        data = r.compute(split)
                    return data, encode_updates(sink)

                filled = self._process_map(tracer, fill, splits)
                for split, (data, pairs) in zip(splits, filled):
                    r._install_partition(split, data)
                    apply_encoded_updates(pairs)

        visit(rdd)

    # ------------------------------------------------------------------
    # accumulator commits (exactly-once per logical task)
    # ------------------------------------------------------------------
    def _mark_committed(self, key: tuple[int, int]) -> bool:
        with self._commit_lock:
            if key in self._committed:
                return False
            self._committed.add(key)
            return True

    def _commit_task(self, key: tuple[int, int], sink: Any) -> None:
        """Apply an attempt's buffered accumulator updates exactly once
        per logical task (lineage recomputation of an already-committed
        task discards its updates — that's the exactly-once guarantee)."""
        if self._mark_committed(key):
            commit_updates(sink)

    def _commit_task_encoded(self, key: tuple[int, int], pairs: list[tuple[int, Any]]) -> None:
        """The process-backend commit: same exactly-once gate, but the
        updates arrive as encoded ``(accumulator_id, amount)`` pairs."""
        if self._mark_committed(key):
            apply_encoded_updates(pairs)

    # ------------------------------------------------------------------
    # virtual workers (fault-tolerance scheduling model)
    # ------------------------------------------------------------------
    def _pick_worker(self, partition: int, attempt: int) -> int:
        """Deterministic assignment over live (non-blacklisted) workers."""
        with self._blacklist_lock:
            live = [w for w in range(self.num_workers) if w not in self._blacklisted]
        return live[(partition + attempt) % len(live)]

    def _blacklist(self, worker: int) -> bool:
        """Remove ``worker`` from scheduling; refuses to kill the last one."""
        with self._blacklist_lock:
            if worker in self._blacklisted:
                return False
            if len(self._blacklisted) >= self.num_workers - 1:
                return False
            self._blacklisted.add(worker)
        self.metrics.bump("spark.blacklisted_workers")
        if self.fault_report is not None:
            self.fault_report.record_blacklist(worker)
        return True

    # ------------------------------------------------------------------
    # shuffle registration + spill management (fault injection seams)
    # ------------------------------------------------------------------
    def _next_shuffle_index(self) -> int:
        """Number a shuffle in materialization order (the coordinate
        ``shuffle`` and spill-file fault events address)."""
        with self._job_lock:
            index = self._shuffle_counter
            self._shuffle_counter += 1
        return index

    def _create_shuffle_store(self, index: int, num_maps: int, num_parts: int) -> Any:
        """Build the block store for shuffle ``index`` with this context's
        checksum/spill configuration wired in."""
        plan = self._fault_plan
        # Corruption of resident blocks only enters through the plan, so
        # resident checksums are pure overhead unless the plan schedules
        # a shuffle fault — or the user asked for them via verify_reads.
        checksums = plan is not None and plan.has_shuffle_events
        return ShuffleBlockStore(
            num_maps,
            num_parts,
            checksums=checksums,
            verify_reads=self.verify_reads,
            memory_budget=self.memory_budget,
            spill_dir=self._spill_dir if self.memory_budget is not None else None,
            spill_name=f"shuffle-{index:05d}",
            compress=self.spill_compress,
            on_spill=(
                (lambda info: self._on_spill_file(index, info))
                if self.memory_budget is not None
                else None
            ),
            on_merge=self._on_merge_pass,
        )

    def _inject_shuffle_corruption(self, store: Any, index: int) -> None:
        """Apply any scheduled resident-block corruption to a freshly
        materialized shuffle — after the blocks exist, before any fetch."""
        if self._fault_plan is None:
            return
        for event in self._fault_plan.shuffle_events(index):
            map_task = event.unit % store.num_maps
            reduce_part = (event.unit // store.num_maps) % store.num_parts
            if store.corrupt(map_task, reduce_part):
                self.metrics.bump("spark.injected_faults")
                assert self.fault_report is not None
                self.fault_report.record_injection(
                    SparkInjectionRecord("shuffle", index, event.unit)
                )
                get_tracer().instant(
                    "fault.shuffle", category="spark.fault", scope="spark.driver",
                    shuffle=index, map_task=map_task, reduce_part=reduce_part,
                )

    def _spill_dir(self) -> Path:
        """The context-private spill directory, created on first spill and
        removed by :meth:`stop`."""
        with self._spill_lock:
            if self._spill_root is None:
                base = None
                if self._spill_dir_base is not None:
                    self._spill_dir_base.mkdir(parents=True, exist_ok=True)
                    base = str(self._spill_dir_base)
                self._spill_root = Path(
                    tempfile.mkdtemp(prefix="repro-spark-spill-", dir=base)
                )
            return self._spill_root

    @property
    def spill_directory(self) -> Path | None:
        """Where spill runs live (``None`` until the first spill/after stop)."""
        with self._spill_lock:
            return self._spill_root

    def _on_spill_file(self, shuffle: int, info: SpillFileInfo) -> None:
        """Account one written spill run and fire any scheduled disk fault
        against it (deletion / truncation / byte corruption)."""
        self.metrics.bump("spark.spill_files")
        self.metrics.bump("spark.spill_bytes", info.bytes)
        get_tracer().instant(
            "spill", category="spark.spill", scope="spark.driver",
            shuffle=shuffle, file=info.slot, bytes=info.bytes,
            blocks=info.blocks, map_tasks=len(info.map_tasks),
            compressed=info.compressed,
        )
        plan = self._fault_plan
        if plan is None:
            return
        event = plan.spill_event(shuffle, info.slot)
        if event is None:
            return
        with self._spill_lock:
            self._spill_fired[(shuffle, info.slot)] = 1
        if damage_spill_file(info.path, event.kind):
            self.metrics.bump("spark.injected_faults")
            assert self.fault_report is not None
            self.fault_report.record_injection(
                SparkInjectionRecord(event.kind, shuffle, info.slot)
            )
            get_tracer().instant(
                f"fault.{event.kind}", category="spark.fault", scope="spark.driver",
                shuffle=shuffle, file=info.slot,
            )

    def _spill_refire(self, shuffle: int, slot: int) -> bool:
        """Whether the spill fault at ``(shuffle, slot)`` destroys the
        recomputed data again (its ``attempts`` are not yet exhausted).
        Each call that returns True consumes one attempt."""
        plan = self._fault_plan
        if plan is None:
            return False
        event = plan.spill_event(shuffle, slot)
        if event is None:
            return False
        with self._spill_lock:
            fired = self._spill_fired.get((shuffle, slot), 0)
            if fired >= event.attempts:
                return False
            self._spill_fired[(shuffle, slot)] = fired + 1
        self.metrics.bump("spark.injected_faults")
        if self.fault_report is not None:
            self.fault_report.record_injection(
                SparkInjectionRecord(event.kind, shuffle, slot, attempt=fired)
            )
        return True

    def _on_merge_pass(self, runs: int) -> None:
        """Account one reduce-side k-way merge over spilled runs."""
        self.metrics.bump("spark.merge_passes")
        get_tracer().instant(
            "merge", category="spark.spill", runs=runs,
        )

    # ------------------------------------------------------------------
    # cooperative cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation of all current and future jobs.

        Only effective when the context's token supports ``set()`` (the
        default internal token and any ``threading.Event`` do). Running
        tasks finish their current body; the next task boundary raises
        :class:`SparkJobCancelled` before any accumulator commit.
        """
        setter = getattr(self._cancel_token, "set", None)
        if setter is None:
            raise TypeError(
                f"cancel_token {self._cancel_token!r} has no set(); cancel it "
                "at its source instead"
            )
        setter()

    @property
    def cancelled(self) -> bool:
        """Whether the cancel token has been set."""
        return bool(self._cancel_token.is_set())

    def _check_cancelled(self, job: int | None = None, partition: int | None = None) -> None:
        if self._cancel_token.is_set():
            get_tracer().instant(
                "job_cancelled", category="spark.cancel", scope="spark.driver",
                job=-1 if job is None else job,
            )
            raise SparkJobCancelled(self.name, job, partition)

    # ------------------------------------------------------------------
    # lifecycle / bookkeeping
    # ------------------------------------------------------------------
    def reset_metrics(self) -> None:
        """Zero the engine counters (between benchmark phases)."""
        self.metrics = JobMetrics()

    def stop(self) -> None:
        """Refuse further work (catching use-after-stop bugs in pipelines).

        Idempotent: stopping a stopped context is a no-op, so ``with``
        blocks and explicit ``stop()`` calls compose.
        """
        with self._spill_lock:
            spill_root, self._spill_root = self._spill_root, None
        if spill_root is not None:
            # Best-effort, even after a failed job: leaked spill runs are
            # the disk-tier equivalent of a memory leak.
            shutil.rmtree(spill_root, ignore_errors=True)
        if self._stopped:
            return
        self._stopped = True
        executor, self._executor = self._executor, None
        if executor is not None and self._owns_executor:
            executor.close()

    def _check_alive(self) -> None:
        if self._stopped:
            raise RuntimeError(
                f"{self.name} has been stopped; create a fresh SparkContext "
                "to run further jobs"
            )

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else "alive"
        plan = f", fault_plan={self._fault_plan!r}" if self._fault_plan is not None else ""
        return (
            f"{type(self).__name__}(name={self.name!r}, num_workers={self.num_workers}, "
            f"backend={self.backend!r}, {state}{plan})"
        )
