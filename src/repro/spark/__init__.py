"""A miniature Spark: lazy RDDs, shuffles, and a stage-aware scheduler.

The data-science-pipeline assignment (paper §4) has students build
multi-step analysis workflows in Spark on a Hadoop cluster. Offline,
this package supplies the equivalent engine:

- :class:`SparkContext` — entry point: ``parallelize`` data into
  partitioned :class:`RDD`\\ s, create ``broadcast`` variables and
  ``accumulator``\\ s, and execute jobs on a thread pool.
- :class:`RDD` — the lazy, immutable, partitioned collection with the
  classic transformation/action split: ``map``/``filter``/``flatMap``/
  ``reduceByKey``/``join``/``groupByKey``/``sortBy``/… build a lineage
  DAG; ``collect``/``count``/``reduce``/… trigger execution.
- :mod:`repro.spark.dag` — lineage introspection: which transformations
  are narrow vs wide, and how the job splits into shuffle-bounded
  stages (the concept the course's MapReduce-algorithm-design lectures
  revolve around).
- Hash and range partitioners, map-side combining, and a cache layer
  (``persist``), so the performance *lessons* — shuffles are expensive,
  combiners shrink them, caching pays off for reused intermediates —
  are all observable in the simulator's counters.

- :mod:`repro.spark.faults` — seeded, bit-reproducible fault injection
  (task failures, worker blacklisting, corrupted shuffle/broadcast
  blocks, stragglers, lost/truncated/corrupted spill files) and the
  recovery machinery that survives it: retries, lineage recomputation,
  ``RDD.checkpoint()``, speculative execution. For any seed, results
  under a fault plan are bit-identical to the fault-free run.
- Out-of-core shuffle: ``SparkContext(memory_budget=...)`` bounds
  resident shuffle memory, spilling sorted CRC-checksummed runs to a
  temp directory that the idempotent ``stop()`` cleans up; the reduce
  side k-way merges runs back, bit-identical to the unbounded run
  (see ``docs/fault_tolerance.md``).

Determinism: partitioning uses :func:`repro.mapreduce.stable_hash`, and
all merges happen in partition order, so every pipeline result is exactly
reproducible run to run.
"""

from repro.spark.accumulators import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.context import JobMetrics, SparkContext, SparkJobCancelled
from repro.spark.dag import execution_stages, lineage, recomputation_frontier
from repro.spark.dataframe import DataFrame, GroupedData
from repro.spark.faults import (
    SPILL_FAULT_KINDS,
    BlacklistedWorker,
    SparkFaultEvent,
    SparkFaultPlan,
    SparkFaultReport,
    SparkInjectionRecord,
    SparkJobFailedError,
    TaskFailure,
)
from repro.spark.partitioner import HashPartitioner, RangePartitioner
from repro.spark.rdd import RDD
from repro.spark.shuffle import (
    CorruptShuffleBlockError,
    LostSpillFileError,
    ShuffleBlockStore,
    SpillFileInfo,
)
from repro.spark.stats import StatCounter, histogram, stats, take_sample

__all__ = [
    "SparkContext",
    "JobMetrics",
    "SparkJobCancelled",
    "RDD",
    "Broadcast",
    "Accumulator",
    "HashPartitioner",
    "RangePartitioner",
    "lineage",
    "execution_stages",
    "recomputation_frontier",
    "StatCounter",
    "stats",
    "histogram",
    "take_sample",
    "DataFrame",
    "GroupedData",
    "SparkFaultEvent",
    "SparkFaultPlan",
    "SparkFaultReport",
    "SparkInjectionRecord",
    "SparkJobFailedError",
    "TaskFailure",
    "BlacklistedWorker",
    "CorruptShuffleBlockError",
    "ShuffleBlockStore",
    "LostSpillFileError",
    "SpillFileInfo",
    "SPILL_FAULT_KINDS",
]
