"""Shuffle block storage for the mini-Spark engine: in-memory + spill-to-disk.

A shuffle materializes one *block* per ``(map_task, reduce_partition)``
pair: the list of key/value pairs map task ``m`` routed to reduce
partition ``r``. :class:`ShuffleBlockStore` owns that matrix. It was
extracted from ``ShuffledRDD`` so the fault layer has a seam to corrupt
blocks at and the engine a seam to verify them through.

Resident (in-memory) blocks come in two representations, chosen once at
construction:

- **plain** (the default): blocks are the raw in-memory lists, exactly
  the pre-extraction representation. Zero overhead — this is the
  fault-free hot path.
- **serialized** (``checksums=True`` or ``verify_reads=True``): each
  block is stored as its pickle plus a crc32, and every fetch verifies
  before unpickling. A mismatch raises
  :class:`CorruptShuffleBlockError`, which ``ShuffledRDD`` treats as a
  *lost partition*: the owning map task is recomputed from lineage and
  its blocks re-stored. ``checksums`` is how a ``SparkFaultPlan`` with
  scheduled block corruption arms the store; ``verify_reads`` is the
  user-facing knob that turns the same verification on *independently*
  of any plan (paranoia mode for untrusted memory).

With a ``memory_budget`` (bytes) the store becomes **out-of-core**:
``put`` tracks an estimate of resident bytes, and when the budget is
exceeded every unpinned resident row is spilled as one sorted *run* —
a temp file holding each block's pickled (optionally zlib-compressed)
payload, ordered by ``(reduce_partition, map_task)`` so a reduce task's
blocks are contiguous. Every spilled block carries a crc32 in the
in-memory index; a missing file, short read, or checksum mismatch on
fetch raises :class:`LostSpillFileError` naming every map task whose
output lived in that file, and ``ShuffledRDD`` recomputes them from
lineage (re-stored rows are *pinned* resident so recovery terminates).
The reduce side k-way merges the spilled runs with the resident rows in
map-task order (:meth:`ShuffleBlockStore.iter_blocks`), so results are
bit-identical to the unbounded in-memory run.

Corruption of resident blocks (:meth:`ShuffleBlockStore.corrupt`) flips
bits in the stored pickle without touching the recorded checksum — the
model for a memory/network fault that checksums exist to catch. Spill
*files* are damaged through the filesystem instead (deleted, truncated,
or byte-flipped) by the context's fault hook right after they are
written.
"""

from __future__ import annotations

import heapq
import os
import pickle
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "ShuffleBlockStore",
    "CorruptShuffleBlockError",
    "LostSpillFileError",
    "SpillFileInfo",
    "damage_spill_file",
]

Pair = tuple[Any, Any]

#: Deterministic per-record size estimate (bytes) used for budget
#: accounting of *plain* resident rows. The estimate only decides *when*
#: to spill — correctness never depends on it — so a cheap count-based
#: model keeps the until-spill path free of serialization costs.
#: Serialized rows are accounted at their exact payload size.
RECORD_ESTIMATE_BYTES = 64
#: Per-bucket fixed overhead in the same estimate (list + pointers).
BUCKET_ESTIMATE_BYTES = 56


class CorruptShuffleBlockError(RuntimeError):
    """A stored shuffle block failed checksum verification on fetch."""

    def __init__(self, map_task: int, reduce_part: int) -> None:
        super().__init__(
            f"shuffle block (map_task={map_task}, reduce_part={reduce_part}) "
            "failed checksum verification"
        )
        self.map_task = map_task
        self.reduce_part = reduce_part


class LostSpillFileError(RuntimeError):
    """A spill file is missing, truncated, or failed CRC verification.

    Carries every map task whose output lived in the file: one bad byte
    poisons the whole run, so recovery recomputes all of them from
    lineage and re-stores the rows pinned in memory.
    """

    def __init__(self, slot: int, path: str, reason: str, map_tasks: tuple[int, ...]) -> None:
        super().__init__(
            f"spill file {slot} ({path}) is lost: {reason}; map output(s) "
            f"{list(map_tasks)} must be recomputed from lineage"
        )
        self.slot = slot
        self.path = path
        self.reason = reason
        self.map_tasks = map_tasks


@dataclass(frozen=True)
class SpillFileInfo:
    """One written spill run: slot (creation order), path, and contents."""

    slot: int
    path: str
    map_tasks: tuple[int, ...]
    blocks: int
    bytes: int
    compressed: bool


class _SpillFile:
    """Bookkeeping for one run file: its block index and liveness."""

    __slots__ = ("slot", "path", "index", "map_tasks", "bytes", "lost", "recovered")

    def __init__(self, slot: int, path: Path, map_tasks: tuple[int, ...]) -> None:
        self.slot = slot
        self.path = path
        #: (map_task, reduce_part) -> (offset, length, crc32).
        self.index: dict[tuple[int, int], tuple[int, int, int]] = {}
        self.map_tasks = map_tasks
        self.bytes = 0
        self.lost = False
        self.recovered = False


class ShuffleBlockStore:
    """The materialized output matrix of one shuffle.

    ``num_maps`` map tasks each contribute ``num_parts`` blocks (one per
    reduce partition). Writers call :meth:`put` once per map task;
    readers call :meth:`get` per block or :meth:`iter_blocks` per reduce
    partition. Thread-safe: concurrent reduce tasks fetch while a
    recovery path may be re-storing a recomputed map output.

    ``memory_budget`` (bytes, ``None`` = unbounded) turns on
    spill-to-disk; ``spill_dir`` is the directory spill runs are written
    to (a ``Path`` or a zero-argument callable returning one, so the
    owner can create it lazily); ``compress`` zlib-compresses spilled
    block payloads. ``on_spill`` is called with a :class:`SpillFileInfo`
    right after each run file is written (the owner's metrics/fault
    seam); ``on_merge`` is called with the run count whenever a reduce
    fetch k-way merges two or more sources.
    """

    def __init__(
        self,
        num_maps: int,
        num_parts: int,
        *,
        checksums: bool = False,
        verify_reads: bool = False,
        memory_budget: int | None = None,
        spill_dir: Path | str | Callable[[], Path] | None = None,
        spill_name: str = "shuffle",
        compress: bool = False,
        on_spill: Callable[[SpillFileInfo], None] | None = None,
        on_merge: Callable[[int], None] | None = None,
    ) -> None:
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError(f"memory_budget must be a positive byte count, got {memory_budget}")
        if memory_budget is not None and spill_dir is None:
            raise ValueError("memory_budget requires a spill_dir to spill into")
        self.num_maps = num_maps
        self.num_parts = num_parts
        #: Whether resident blocks are stored serialized (pickle + crc32)
        #: and verified on every fetch. True when the fault plan schedules
        #: corruption (``checksums``) or the user asked for verification
        #: unconditionally (``verify_reads``).
        self.checksums = checksums or verify_reads
        self.verify_reads = verify_reads
        self.memory_budget = memory_budget
        self.compress = compress
        self._spill_dir = spill_dir
        self._spill_name = spill_name
        self._on_spill = on_spill
        self._on_merge = on_merge
        self._lock = threading.Lock()
        # plain mode: _blocks[m][r] is the raw pair list.
        # serialized mode: _blocks[m][r] is (payload_bytes, crc32).
        # None: the row is not resident (never stored, or spilled).
        self._blocks: list[list[Any] | None] = [None] * num_maps
        self._pinned: set[int] = set()
        self._row_estimate: list[int] = [0] * num_maps
        self._resident_estimate = 0
        self._files: dict[int, _SpillFile] = {}
        self._spilled_slot: dict[int, int] = {}  # map_task -> live file slot
        self._next_slot = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, map_task: int, buckets: Sequence[list[Pair]], *, pin: bool = False) -> None:
        """Store map task ``map_task``'s full row of ``num_parts`` buckets.

        ``pin=True`` (the recovery path) keeps the row resident and
        exempt from budget accounting, so a recomputed map output can
        never be spilled back onto the fault that just destroyed it.
        """
        if len(buckets) != self.num_parts:
            raise ValueError(
                f"map task {map_task} produced {len(buckets)} buckets, "
                f"expected {self.num_parts}"
            )
        if self.checksums:
            row: list[Any] = []
            estimate = 0
            for bucket in buckets:
                payload = pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL)
                estimate += len(payload)
                row.append((payload, zlib.crc32(payload)))
        else:
            row = list(buckets)
            estimate = sum(
                BUCKET_ESTIMATE_BYTES + RECORD_ESTIMATE_BYTES * len(b) for b in buckets
            )
        with self._lock:
            old_slot = self._spilled_slot.pop(map_task, None)
            if old_slot is not None and not self._files[old_slot].lost:
                # A live spilled copy is being replaced (shouldn't happen
                # in normal operation); drop its index entries.
                self._files[old_slot].index = {
                    k: v for k, v in self._files[old_slot].index.items() if k[0] != map_task
                }
            if self._blocks[map_task] is not None and not (
                map_task in self._pinned or self.memory_budget is None
            ):
                self._resident_estimate -= self._row_estimate[map_task]
            self._blocks[map_task] = row
            self._row_estimate[map_task] = estimate
            if pin:
                self._pinned.add(map_task)
                return
            if self.memory_budget is None:
                return
            self._resident_estimate += estimate
            if self._resident_estimate > self.memory_budget:
                self._spill_locked()

    def _spill_locked(self) -> None:
        """Write every unpinned resident row out as one sorted run file.

        Called with the lock held. Blocks are laid out sorted by
        ``(reduce_part, map_task)`` so each reduce partition's blocks
        are contiguous and the per-file reduce stream is a sequential
        scan. Every block payload's crc32 is recorded in the in-memory
        index — the spill tier is always checksummed.
        """
        victims = sorted(
            m
            for m in range(self.num_maps)
            if self._blocks[m] is not None and m not in self._pinned
        )
        if not victims:
            return
        spill_dir = self._spill_dir() if callable(self._spill_dir) else Path(self._spill_dir)
        slot = self._next_slot
        self._next_slot += 1
        path = spill_dir / f"{self._spill_name}-run-{slot:05d}.spill"
        record = _SpillFile(slot, path, tuple(victims))
        offset = 0
        blocks = 0
        with open(path, "wb") as fh:
            for reduce_part in range(self.num_parts):
                for map_task in victims:
                    block = self._blocks[map_task][reduce_part]  # type: ignore[index]
                    payload = block[0] if self.checksums else pickle.dumps(
                        block, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    if self.compress:
                        payload = zlib.compress(payload)
                    fh.write(payload)
                    record.index[(map_task, reduce_part)] = (
                        offset,
                        len(payload),
                        zlib.crc32(payload),
                    )
                    offset += len(payload)
                    blocks += 1
        record.bytes = offset
        for map_task in victims:
            self._blocks[map_task] = None
            self._spilled_slot[map_task] = slot
        self._resident_estimate = 0
        self._files[slot] = record
        if self._on_spill is not None:
            self._on_spill(
                SpillFileInfo(
                    slot=slot,
                    path=str(path),
                    map_tasks=record.map_tasks,
                    blocks=blocks,
                    bytes=record.bytes,
                    compressed=self.compress,
                )
            )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, map_task: int, reduce_part: int) -> list[Pair]:
        """Fetch one block, verifying checksums where they exist.

        Raises :class:`CorruptShuffleBlockError` on a resident checksum
        mismatch, :class:`LostSpillFileError` when the block's spill
        file is gone or damaged, and ``KeyError`` if the map task's
        output was never stored.
        """
        with self._lock:
            row = self._blocks[map_task]
            if row is not None:
                block = row[reduce_part]
                spill_file = None
            else:
                slot = self._spilled_slot.get(map_task)
                if slot is None:
                    raise KeyError(f"map task {map_task} has no stored shuffle output")
                spill_file = self._files[slot]
        if spill_file is not None:
            return self._read_spill_block(spill_file, map_task, reduce_part)
        if not self.checksums:
            return block
        payload, crc = block
        if zlib.crc32(payload) != crc:
            raise CorruptShuffleBlockError(map_task, reduce_part)
        return pickle.loads(payload)

    def _read_spill_block(
        self, record: _SpillFile, map_task: int, reduce_part: int, fh: Any = None
    ) -> list[Pair]:
        """Read + verify one spilled block; escalate any damage to a
        whole-file :class:`LostSpillFileError` (one bad byte poisons the
        run — every map output in it is recomputed)."""
        if record.lost:
            raise LostSpillFileError(
                record.slot, str(record.path), "previously detected loss", record.map_tasks
            )
        offset, length, crc = record.index[(map_task, reduce_part)]
        try:
            if fh is None:
                with open(record.path, "rb") as own:
                    own.seek(offset)
                    payload = own.read(length)
            else:
                fh.seek(offset)
                payload = fh.read(length)
        except FileNotFoundError:
            raise self._lose_file(record, "file deleted") from None
        if len(payload) < length:
            raise self._lose_file(record, f"truncated ({offset + len(payload)} bytes)")
        if zlib.crc32(payload) != crc:
            raise self._lose_file(record, "checksum mismatch")
        if self.compress:
            payload = zlib.decompress(payload)
        return pickle.loads(payload)

    def _lose_file(self, record: _SpillFile, reason: str) -> LostSpillFileError:
        with self._lock:
            record.lost = True
        return LostSpillFileError(record.slot, str(record.path), reason, record.map_tasks)

    def iter_blocks(self, reduce_part: int) -> Iterator[tuple[int, list[Pair]]]:
        """Yield ``(map_task, block)`` for one reduce partition, in map-task
        order, k-way merging resident rows with any spilled runs.

        The no-spill case short-circuits to the resident fast path; with
        spills, each live run contributes one sequential-scan stream and
        ``heapq.merge`` interleaves them with the resident stream by map
        task (streams are disjoint by construction: a map output is
        resident *or* lives in exactly one live run).
        """
        with self._lock:
            have_spills = bool(self._files)
        if not have_spills:
            for map_task in range(self.num_maps):
                yield map_task, self.get(map_task, reduce_part)
            return
        # One consistent snapshot: resident rows, each live run's task
        # list, and a guard against tasks stranded in a lost run (a
        # concurrent recovery marked the file lost but hasn't re-stored
        # every row yet) — raising sends this reader through the
        # recovery path, where it blocks until the rows are back.
        with self._lock:
            resident = [m for m in range(self.num_maps) if self._blocks[m] is not None]
            per_file: dict[int, list[int]] = {}
            for m, slot in self._spilled_slot.items():
                if self._blocks[m] is not None:
                    continue
                record = self._files[slot]
                if record.lost:
                    raise LostSpillFileError(
                        record.slot, str(record.path),
                        "previously detected loss", record.map_tasks,
                    )
                per_file.setdefault(slot, []).append(m)
            live = [
                (self._files[slot], sorted(tasks)) for slot, tasks in sorted(per_file.items())
            ]

        def resident_stream() -> Iterator[tuple[int, list[Pair]]]:
            for m in resident:
                yield m, self.get(m, reduce_part)

        def file_stream(record: _SpillFile, tasks: list[int]) -> Iterator[tuple[int, list[Pair]]]:
            fh = None
            try:
                try:
                    fh = open(record.path, "rb")
                except FileNotFoundError:
                    raise self._lose_file(record, "file deleted") from None
                for m in tasks:
                    yield m, self._read_spill_block(record, m, reduce_part, fh=fh)
            finally:
                if fh is not None:
                    fh.close()

        streams: list[Iterator[tuple[int, list[Pair]]]] = [
            file_stream(f, tasks) for f, tasks in live
        ]
        if resident:
            streams.append(resident_stream())
        if len(streams) > 1 and self._on_merge is not None:
            self._on_merge(len(streams))
        if len(streams) == 1:
            yield from streams[0]
            return
        yield from heapq.merge(*streams, key=lambda entry: entry[0])

    def has_output(self, map_task: int) -> bool:
        """Whether ``map_task``'s row has been stored (possibly corrupt),
        resident or spilled."""
        with self._lock:
            return self._blocks[map_task] is not None or map_task in self._spilled_slot

    # ------------------------------------------------------------------
    # spill introspection (consumed by recovery, reports, and tests)
    # ------------------------------------------------------------------
    @property
    def spill_file_count(self) -> int:
        """Total spill runs written over this store's lifetime."""
        with self._lock:
            return len(self._files)

    def spill_files(self) -> list[SpillFileInfo]:
        """Snapshot of every spill run ever written (lost ones included)."""
        with self._lock:
            return [
                SpillFileInfo(
                    slot=f.slot,
                    path=str(f.path),
                    map_tasks=f.map_tasks,
                    blocks=len(f.index),
                    bytes=f.bytes,
                    compressed=self.compress,
                )
                for f in self._files.values()
            ]

    def lost_spill_files(self) -> list[int]:
        """Slots of spill files detected lost (recovered or not)."""
        with self._lock:
            return sorted(f.slot for f in self._files.values() if f.lost)

    def file_needs_recovery(self, slot: int) -> bool:
        """Whether ``slot`` is lost and nobody has recovered it yet."""
        with self._lock:
            record = self._files.get(slot)
            return record is not None and record.lost and not record.recovered

    def mark_file_recovered(self, slot: int) -> None:
        """Record that ``slot``'s map outputs have been re-stored."""
        with self._lock:
            record = self._files.get(slot)
            if record is not None:
                record.recovered = True

    # ------------------------------------------------------------------
    # fault seams (resident-block corruption; spill files are damaged
    # through the filesystem by the owner)
    # ------------------------------------------------------------------
    def corrupt(self, map_task: int, reduce_part: int) -> bool:
        """Flip bits in one resident block's payload (serialized mode only).

        The recorded checksum is left untouched so the next
        :meth:`get` of this block fails verification. Returns whether
        anything was corrupted (``False`` if the row isn't resident or
        the store keeps plain blocks — nothing to corrupt against).
        """
        if not self.checksums:
            return False
        with self._lock:
            row = self._blocks[map_task]
            if row is None:
                return False
            payload, crc = row[reduce_part]
            mangled = bytes([payload[0] ^ 0xFF]) + payload[1:]
            row[reduce_part] = (mangled, crc)
        return True

    def corrupted_blocks(self, map_task: int) -> list[int]:
        """Reduce partitions of ``map_task`` currently failing verification
        (resident serialized blocks only)."""
        if not self.checksums:
            return []
        with self._lock:
            row = self._blocks[map_task]
            if row is None:
                return []
            blocks = list(row)
        return [r for r, (payload, crc) in enumerate(blocks) if zlib.crc32(payload) != crc]

    def __repr__(self) -> str:
        with self._lock:
            stored = sum(1 for row in self._blocks if row is not None)
            spilled = len(self._spilled_slot)
            files = len(self._files)
        mode = "checksummed" if self.checksums else "plain"
        spill = f", {spilled} spilled over {files} run(s)" if files else ""
        return (
            f"ShuffleBlockStore({stored}/{self.num_maps} map outputs resident, "
            f"{self.num_parts} partitions, {mode}{spill})"
        )


def damage_spill_file(path: str | Path, kind: str) -> bool:
    """Apply one injected disk fault to a spill file.

    ``kind`` is ``"spill_delete"`` (unlink), ``"spill_truncate"`` (cut
    to half its length), or ``"spill_corrupt"`` (flip one mid-file
    byte, leaving the recorded checksum stale). Returns whether the
    file existed to damage. Used by the context's fault hook; kept here
    so the damage model lives next to the detection model.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return False
    if kind == "spill_delete":
        os.remove(path)
    elif kind == "spill_truncate":
        os.truncate(path, size // 2)
    elif kind == "spill_corrupt":
        with open(path, "r+b") as fh:
            fh.seek(size // 2 if size else 0)
            byte = fh.read(1)
            fh.seek(size // 2 if size else 0)
            fh.write(bytes([(byte[0] if byte else 0) ^ 0xFF]))
    else:
        raise ValueError(f"unknown spill damage kind {kind!r}")
    return True
