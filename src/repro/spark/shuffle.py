"""Shuffle block storage for the mini-Spark engine.

A shuffle materializes one *block* per ``(map_task, reduce_partition)``
pair: the list of key/value pairs map task ``m`` routed to reduce
partition ``r``. :class:`ShuffleBlockStore` owns that matrix. It was
extracted from ``ShuffledRDD`` so the fault layer has a seam to corrupt
blocks at and the engine a seam to verify them through.

Two storage modes, chosen once at construction:

- **plain** (the default, ``checksums=False``): blocks are the raw
  in-memory lists, exactly the pre-extraction representation. Zero
  overhead — this is the fault-free hot path.
- **checksummed** (``checksums=True``, used when a ``SparkFaultPlan``
  is installed): each block is stored as its pickle plus a crc32, and
  every fetch verifies before unpickling. A mismatch raises
  :class:`CorruptShuffleBlockError`, which ``ShuffledRDD`` treats as a
  *lost partition*: the owning map task is recomputed from lineage and
  its blocks re-stored.

Corruption itself (:meth:`ShuffleBlockStore.corrupt`) flips bits in the
stored pickle without touching the recorded checksum — the model for a
disk/network fault that checksums exist to catch.
"""

from __future__ import annotations

import pickle
import threading
import zlib
from typing import Any, Sequence

__all__ = ["ShuffleBlockStore", "CorruptShuffleBlockError"]

Pair = tuple[Any, Any]


class CorruptShuffleBlockError(RuntimeError):
    """A stored shuffle block failed checksum verification on fetch."""

    def __init__(self, map_task: int, reduce_part: int) -> None:
        super().__init__(
            f"shuffle block (map_task={map_task}, reduce_part={reduce_part}) "
            "failed checksum verification"
        )
        self.map_task = map_task
        self.reduce_part = reduce_part


class ShuffleBlockStore:
    """The materialized output matrix of one shuffle.

    ``num_maps`` map tasks each contribute ``num_parts`` blocks (one per
    reduce partition). Writers call :meth:`put` once per map task;
    readers call :meth:`get` per block. Thread-safe: concurrent reduce
    tasks fetch while a recovery path may be re-storing a recomputed
    map output.
    """

    def __init__(self, num_maps: int, num_parts: int, *, checksums: bool = False) -> None:
        self.num_maps = num_maps
        self.num_parts = num_parts
        self.checksums = checksums
        self._lock = threading.Lock()
        # plain mode: _blocks[m][r] is the raw pair list.
        # checksummed mode: _blocks[m][r] is (payload_bytes, crc32).
        self._blocks: list[list[Any] | None] = [None] * num_maps

    def put(self, map_task: int, buckets: Sequence[list[Pair]]) -> None:
        """Store map task ``map_task``'s full row of ``num_parts`` buckets."""
        if len(buckets) != self.num_parts:
            raise ValueError(
                f"map task {map_task} produced {len(buckets)} buckets, "
                f"expected {self.num_parts}"
            )
        if self.checksums:
            row: list[Any] = []
            for bucket in buckets:
                payload = pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL)
                row.append((payload, zlib.crc32(payload)))
        else:
            row = list(buckets)
        with self._lock:
            self._blocks[map_task] = row

    def get(self, map_task: int, reduce_part: int) -> list[Pair]:
        """Fetch one block, verifying its checksum in checksummed mode.

        Raises :class:`CorruptShuffleBlockError` on a checksum mismatch
        and ``KeyError`` if the map task's output was never stored.
        """
        with self._lock:
            row = self._blocks[map_task]
            if row is None:
                raise KeyError(f"map task {map_task} has no stored shuffle output")
            block = row[reduce_part]
        if not self.checksums:
            return block
        payload, crc = block
        if zlib.crc32(payload) != crc:
            raise CorruptShuffleBlockError(map_task, reduce_part)
        return pickle.loads(payload)

    def has_output(self, map_task: int) -> bool:
        """Whether ``map_task``'s row has been stored (possibly corrupt)."""
        with self._lock:
            return self._blocks[map_task] is not None

    def corrupt(self, map_task: int, reduce_part: int) -> bool:
        """Flip bits in one stored block's payload (checksummed mode only).

        The recorded checksum is left untouched so the next
        :meth:`get` of this block fails verification. Returns whether
        anything was corrupted (``False`` if the row isn't stored yet
        or the store is in plain mode — nothing to corrupt against).
        """
        if not self.checksums:
            return False
        with self._lock:
            row = self._blocks[map_task]
            if row is None:
                return False
            payload, crc = row[reduce_part]
            mangled = bytes([payload[0] ^ 0xFF]) + payload[1:]
            row[reduce_part] = (mangled, crc)
        return True

    def corrupted_blocks(self, map_task: int) -> list[int]:
        """Reduce partitions of ``map_task`` currently failing verification."""
        if not self.checksums:
            return []
        with self._lock:
            row = self._blocks[map_task]
            if row is None:
                return []
            blocks = list(row)
        return [r for r, (payload, crc) in enumerate(blocks) if zlib.crc32(payload) != crc]

    def __repr__(self) -> str:
        with self._lock:
            stored = sum(1 for row in self._blocks if row is not None)
        mode = "checksummed" if self.checksums else "plain"
        return (
            f"ShuffleBlockStore({stored}/{self.num_maps} map outputs, "
            f"{self.num_parts} partitions, {mode})"
        )
