"""Broadcast variables: read-only data shared with every task.

In real Spark a broadcast ships one copy of a lookup table to each
executor instead of once per task. In the thread-pool simulator all
tasks share memory anyway, so the class's job is to enforce the
*contract*: the value is read-only (a pickled snapshot is handed out),
and access after ``unpersist`` fails loudly — the two mistakes the
pipeline assignment's students actually make.
"""

from __future__ import annotations

import pickle
from typing import Any, Generic, TypeVar

T = TypeVar("T")

__all__ = ["Broadcast"]


class Broadcast(Generic[T]):
    """A snapshot of a driver-side value, readable by any task."""

    def __init__(self, value: T) -> None:
        self._payload: bytes | None = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._cached: T | None = pickle.loads(self._payload)

    @property
    def value(self) -> T:
        """The broadcast value (a snapshot of what the driver passed in)."""
        if self._payload is None:
            raise RuntimeError("broadcast variable was unpersisted")
        assert self._cached is not None or True
        return self._cached  # type: ignore[return-value]

    def unpersist(self) -> None:
        """Release the value; later reads raise."""
        self._payload = None
        self._cached = None
