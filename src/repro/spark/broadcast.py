"""Broadcast variables: read-only data shared with every task.

In real Spark a broadcast ships one copy of a lookup table to each
executor instead of once per task. In the thread-pool simulator all
tasks share memory anyway, so the class's job is to enforce the
*contract*: the value is read-only (a pickled snapshot is handed out),
and access after ``unpersist`` fails loudly — the two mistakes the
pipeline assignment's students actually make.

The fault layer adds the third real-world concern: a corrupted shipped
payload. Each broadcast records a crc32 of its pickle at creation and
keeps the driver's *master copy*; the first task access verifies the
shipped payload against the checksum (once — corruption is injected at
ship time, so one verification covers the broadcast's lifetime, and the
per-access hot path stays a plain attribute read). On a mismatch the
payload is refetched from the master copy, the ``on_refetch`` hook
notifies the context's metrics/report, and the task sees the correct
value — bit-identical results, recovery observable.
"""

from __future__ import annotations

import pickle
import threading
import zlib
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["Broadcast"]


class Broadcast(Generic[T]):
    """A snapshot of a driver-side value, readable by any task."""

    def __init__(self, value: T, *, on_refetch: Callable[[], None] | None = None) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._payload: bytes | None = payload
        self._master: bytes | None = payload  # driver-side copy, never corrupted
        self._checksum = zlib.crc32(payload)
        self._cached: T | None = pickle.loads(payload)
        self._verified = False
        self._on_refetch = on_refetch
        self._lock = threading.Lock()

    @property
    def value(self) -> T:
        """The broadcast value (a snapshot of what the driver passed in)."""
        if self._payload is None:
            raise RuntimeError("broadcast variable was unpersisted")
        if not self._verified:
            self._verify()
        return self._cached  # type: ignore[return-value]

    def _verify(self) -> None:
        with self._lock:
            if self._verified or self._payload is None:
                return
            if zlib.crc32(self._payload) != self._checksum:
                # Shipped copy is corrupt: refetch from the driver's master.
                self._payload = self._master
                self._cached = pickle.loads(self._master)  # type: ignore[arg-type]
                if self._on_refetch is not None:
                    self._on_refetch()
            self._verified = True

    def _corrupt(self) -> None:
        """Flip bits in the shipped payload (fault injection hook).

        The checksum and master copy are untouched, so the next task
        access detects the damage and refetches.
        """
        with self._lock:
            if self._payload is None:
                return
            self._payload = bytes([self._payload[0] ^ 0xFF]) + self._payload[1:]
            # Unpickle the damaged ship to model tasks reading it raw;
            # if the mangled pickle won't even load, keep the stale
            # cache — verification will replace it either way.
            try:
                self._cached = pickle.loads(self._payload)
            except Exception:
                pass
            self._verified = False

    def unpersist(self) -> None:
        """Release the value; later reads raise."""
        self._payload = None
        self._master = None
        self._cached = None
