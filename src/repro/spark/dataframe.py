"""A miniature DataFrame API over RDDs.

The pipeline course's student projects (paper §4) mostly speak Spark's
DataFrame dialect — ``select`` / ``where`` / ``groupBy().agg()`` /
``join`` / ``orderBy`` — rather than raw RDDs. This layer provides that
dialect, compiled onto the same RDD engine, so the lineage/stage
introspection and shuffle counters keep working underneath.

Rows are plain dicts; a :class:`DataFrame` carries an explicit column
schema and validates it at construction, which catches the
misspelled-column class of bugs at the API boundary instead of deep in
a shuffle.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.spark.rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext

__all__ = ["DataFrame", "GroupedData", "AGGREGATIONS"]


def _agg_sum(values: list) -> Any:
    return sum(values)


def _agg_count(values: list) -> int:
    return len(values)


def _agg_mean(values: list) -> float:
    return sum(values) / len(values)


def _agg_min(values: list) -> Any:
    return min(values)


def _agg_max(values: list) -> Any:
    return max(values)


def _agg_stdev(values: list) -> float:
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def _agg_collect(values: list) -> list:
    return list(values)


#: Aggregation functions accepted by :meth:`GroupedData.agg`.
AGGREGATIONS: dict[str, Callable[[list], Any]] = {
    "sum": _agg_sum,
    "count": _agg_count,
    "mean": _agg_mean,
    "avg": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
    "stdev": _agg_stdev,
    "collect": _agg_collect,
}


class DataFrame:
    """A schema-checked collection of dict rows on the RDD engine."""

    def __init__(self, rdd: RDD, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a DataFrame needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {list(columns)}")
        self._rdd = rdd
        self.columns = list(columns)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        ctx: "SparkContext",
        rows: Sequence[dict],
        columns: Sequence[str] | None = None,
        num_partitions: int | None = None,
    ) -> "DataFrame":
        """Build from dict rows; the schema defaults to the first row's keys.

        Every row must supply exactly the schema's columns.
        """
        rows = list(rows)
        if columns is None:
            if not rows:
                raise ValueError("cannot infer a schema from zero rows")
            columns = list(rows[0].keys())
        colset = set(columns)
        for i, row in enumerate(rows):
            if set(row.keys()) != colset:
                raise ValueError(
                    f"row {i} has columns {sorted(row)} but schema is {sorted(colset)}"
                )
        return cls(ctx.parallelize(rows, num_partitions), columns)

    def _check_columns(self, names: Sequence[str]) -> None:
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise KeyError(f"unknown column(s) {missing}; schema is {self.columns}")

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def select(self, *names: str) -> "DataFrame":
        """Keep only the named columns (in the given order)."""
        self._check_columns(names)
        cols = list(names)
        return DataFrame(self._rdd.map(lambda row: {c: row[c] for c in cols}), cols)

    def with_column(self, name: str, fn: Callable[[dict], Any]) -> "DataFrame":
        """Add (or replace) a column computed from each row."""
        columns = self.columns + ([name] if name not in self.columns else [])
        return DataFrame(self._rdd.map(lambda row: {**row, name: fn(row)}), columns)

    def drop(self, *names: str) -> "DataFrame":
        """Remove the named columns."""
        self._check_columns(names)
        keep = [c for c in self.columns if c not in names]
        if not keep:
            raise ValueError("cannot drop every column")
        return DataFrame(self._rdd.map(lambda row: {c: row[c] for c in keep}), keep)

    def where(self, pred: Callable[[dict], bool]) -> "DataFrame":
        """Keep rows where ``pred(row)`` is true (a.k.a. ``filter``)."""
        return DataFrame(self._rdd.filter(pred), self.columns)

    filter = where

    def rename(self, mapping: dict[str, str]) -> "DataFrame":
        """Rename columns per ``{old: new}``."""
        self._check_columns(list(mapping))
        new_columns = [mapping.get(c, c) for c in self.columns]
        return DataFrame(
            self._rdd.map(lambda row: {mapping.get(k, k): v for k, v in row.items()}),
            new_columns,
        )

    def distinct(self) -> "DataFrame":
        """Unique rows (one shuffle)."""
        cols = self.columns
        keyed = self._rdd.map(lambda row: (tuple(row[c] for c in cols), None))
        unique = keyed.reduce_by_key(lambda a, _b: a).keys()
        return DataFrame(
            unique.map(lambda values: dict(zip(cols, values))), cols
        )

    def union(self, other: "DataFrame") -> "DataFrame":
        """Concatenate two DataFrames with identical schemas."""
        if other.columns != self.columns:
            raise ValueError(
                f"union needs identical schemas: {self.columns} vs {other.columns}"
            )
        return DataFrame(self._rdd.union(other._rdd), self.columns)

    def order_by(self, column: str, ascending: bool = True) -> "DataFrame":
        """Globally sort rows by one column."""
        self._check_columns([column])
        return DataFrame(
            self._rdd.sort_by(lambda row: row[column], ascending=ascending),
            self.columns,
        )

    def limit(self, n: int) -> "DataFrame":
        """The first ``n`` rows (by partition order)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        taken = self._rdd.take(n)
        return DataFrame(self._rdd.ctx.parallelize(taken, 1), self.columns)

    def join(
        self,
        other: "DataFrame",
        on: str | Sequence[str],
        how: str = "inner",
        *,
        strategy: str = "shuffle",
    ) -> "DataFrame":
        """Equi-join on shared key column(s); ``how`` in inner/left/right/full.

        Non-key columns must not collide (rename first), like Spark
        before aliasing. ``strategy="broadcast"`` (inner joins only)
        collects the *right* side into a broadcast lookup table instead
        of shuffling both sides — the plan hint for small dimension
        tables.
        """
        keys = [on] if isinstance(on, str) else list(on)
        self._check_columns(keys)
        other._check_columns(keys)
        left_vals = [c for c in self.columns if c not in keys]
        right_vals = [c for c in other.columns if c not in keys]
        clash = set(left_vals) & set(right_vals)
        if clash:
            raise ValueError(f"non-key columns collide: {sorted(clash)} — rename first")
        if how not in ("inner", "left", "right", "full"):
            raise ValueError(f"unknown join type {how!r}")
        if strategy not in ("shuffle", "broadcast"):
            raise ValueError(f"unknown join strategy {strategy!r}")
        if strategy == "broadcast" and how != "inner":
            raise ValueError("broadcast strategy supports inner joins only")

        def keyed(rdd: RDD, val_cols: list[str]) -> RDD:
            return rdd.map(
                lambda row: (tuple(row[k] for k in keys), {c: row[c] for c in val_cols})
            )

        left = keyed(self._rdd, left_vals)
        right = keyed(other._rdd, right_vals)
        if strategy == "broadcast":
            joined = left.broadcast_join(right)
        else:
            joined = {
                "inner": left.join(right),
                "left": left.left_outer_join(right),
                "right": left.right_outer_join(right),
                "full": left.full_outer_join(right),
            }[how]

        def assemble(kv):
            key, (lv, rv) = kv
            row = dict(zip(keys, key))
            row.update(lv if lv is not None else {c: None for c in left_vals})
            row.update(rv if rv is not None else {c: None for c in right_vals})
            return row

        return DataFrame(joined.map(assemble), keys + left_vals + right_vals)

    def group_by(self, *names: str) -> "GroupedData":
        """Start a grouped aggregation (``groupBy`` in Spark)."""
        self._check_columns(names)
        if not names:
            raise ValueError("group_by needs at least one column")
        return GroupedData(self, list(names))

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """All rows."""
        return self._rdd.collect()

    def count(self) -> int:
        """Number of rows."""
        return self._rdd.count()

    def first(self) -> dict:
        """First row."""
        return self._rdd.first()

    def to_rdd(self) -> RDD:
        """The underlying RDD of dict rows."""
        return self._rdd

    def column_values(self, name: str) -> list[Any]:
        """One column as a list (convenience for plotting/stats)."""
        self._check_columns([name])
        return self._rdd.map(lambda row: row[name]).collect()

    def describe(self, *names: str) -> "DataFrame":
        """Summary statistics (count/mean/stdev/min/max) of numeric columns.

        With no names, all columns are attempted; non-numeric ones are
        skipped. One row per described column.
        """
        from repro.spark.stats import stats

        targets = list(names) if names else self.columns
        self._check_columns(targets)
        rows = []
        for col in targets:
            values = self._rdd.map(lambda r, c=col: r[c]).filter(
                lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            summary = stats(values)
            if summary.count == 0:
                if names:  # explicitly requested: report the problem
                    raise ValueError(f"column {col!r} has no numeric values")
                continue
            rows.append(
                {
                    "column": col,
                    "count": summary.count,
                    "mean": summary.mean,
                    "stdev": summary.stdev,
                    "min": summary.min_value,
                    "max": summary.max_value,
                }
            )
        if not rows:
            raise ValueError("no numeric columns to describe")
        return DataFrame(
            self._rdd.ctx.parallelize(rows, 1),
            ["column", "count", "mean", "stdev", "min", "max"],
        )

    def show(self, n: int = 10) -> str:
        """A rendered text table of the first ``n`` rows."""
        rows = self._rdd.take(n)
        widths = {c: len(c) for c in self.columns}
        rendered = [
            {c: repr(row[c]) if isinstance(row[c], str) else str(row[c]) for c in self.columns}
            for row in rows
        ]
        for row in rendered:
            for c in self.columns:
                widths[c] = max(widths[c], len(row[c]))
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-+-".join("-" * widths[c] for c in self.columns)
        body = [
            " | ".join(row[c].ljust(widths[c]) for c in self.columns) for row in rendered
        ]
        return "\n".join([header, rule, *body])

    def __repr__(self) -> str:
        return f"DataFrame(columns={self.columns})"


class GroupedData:
    """Intermediate of :meth:`DataFrame.group_by`; finish with :meth:`agg`."""

    def __init__(self, df: DataFrame, keys: list[str]) -> None:
        self._df = df
        self._keys = keys

    def agg(self, spec: dict[str, str | tuple[str, str]]) -> DataFrame:
        """Aggregate grouped rows.

        ``spec`` maps *output column* → aggregation. Each aggregation is
        either ``(input_column, fn_name)`` or the shorthand string
        ``"fn_name"`` applied to the output-column name (Spark's
        ``agg({"col": "sum"})`` convention). ``fn_name`` must be one of
        ``AGGREGATIONS``.
        """
        if not spec:
            raise ValueError("agg needs at least one aggregation")
        plan: list[tuple[str, str, Callable[[list], Any]]] = []
        for out_col, how in spec.items():
            if isinstance(how, str):
                in_col, fn_name = out_col, how
            else:
                in_col, fn_name = how
            if fn_name not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {fn_name!r}; available: {sorted(AGGREGATIONS)}"
                )
            if fn_name != "count":  # count tolerates any column
                self._df._check_columns([in_col])
            plan.append((out_col, in_col, AGGREGATIONS[fn_name]))

        keys = self._keys
        pairs = self._df.to_rdd().map(
            lambda row: (tuple(row[k] for k in keys), row)
        )
        grouped = pairs.group_by_key()

        def finish(kv):
            key, rows = kv
            out = dict(zip(keys, key))
            for out_col, in_col, fn in plan:
                values = [row.get(in_col) for row in rows]
                out[out_col] = fn(values)
            return out

        out_columns = keys + [out_col for out_col, _, _ in plan]
        return DataFrame(grouped.map(finish), out_columns)

    def count(self) -> DataFrame:
        """Shorthand: group sizes in a ``count`` column."""
        return self.agg({"count": (self._keys[0], "count")})
