"""Command-line interface: browse the catalog, run verified demos.

Usage::

    python -m repro list                 # the six assignments
    python -m repro info traffic         # one assignment's full card
    python -m repro demo kmeans          # run a miniature verified demo
    python -m repro demo all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.core.assignment import ASSIGNMENTS, get_assignment, list_assignments

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'key':<10} {'§':>2}  title")
    for a in list_assignments():
        print(f"{a.key:<10} {a.section:>2}  {a.title}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    try:
        a = get_assignment(args.key)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(f"{a.title}  (paper section {a.section})")
    print(f"course context: {a.course_context}")
    print(f"programming models: {', '.join(a.programming_models)}")
    print("concepts:")
    for concept in a.concepts:
        print(f"  - {concept}")
    print(f"modules: {', '.join(a.modules)}")
    print(f"benchmarks: {', '.join(a.benchmarks)}")
    return 0


def _demo_knn() -> None:
    import numpy as np

    from repro.knn import KNNClassifier, make_banknote_like, run_knn_mapreduce, train_test_split

    pts, labels = make_banknote_like(400, seed=0)
    tr_x, tr_y, te_x, te_y = train_test_split(pts, labels, seed=0)
    preds, shipped = run_knn_mapreduce(4, tr_x, tr_y, te_x, k=5)
    serial = KNNClassifier(k=5).fit(tr_x, tr_y).predict(te_x)
    assert np.array_equal(preds, serial)
    print(f"kNN over MapReduce (4 ranks): accuracy {np.mean(preds == te_y):.3f}, "
          f"{shipped} pairs shuffled — identical to serial")


def _demo_kmeans() -> None:
    import numpy as np

    from repro.kmeans import kmeans_openmp, kmeans_sequential
    from repro.kmeans.initialization import init_random_points
    from repro.knn.data import make_blobs

    points, _ = make_blobs(600, 2, 3, seed=1, separation=8.0)
    init = init_random_points(points, 3, seed=2)
    seq = kmeans_sequential(points, 3, initial_centroids=init)
    omp = kmeans_openmp(points, 3, num_threads=4, initial_centroids=init)
    assert np.array_equal(seq.assignments, omp.assignments)
    print(f"K-means: {seq.iterations} iterations, inertia {seq.inertia:.1f} — "
          "OpenMP(4 threads) identical to sequential")


def _demo_pipeline() -> None:
    from repro.pipeline import TABLE1_EXPECTED, aggregate_survey, raw_survey_items
    from repro.pipeline.survey import raw_student_records
    from repro.spark import SparkContext

    table = aggregate_survey(SparkContext(4), raw_survey_items(), raw_student_records())
    assert table == TABLE1_EXPECTED
    print("pipeline: Spark aggregation reproduces Table 1 exactly "
          f"({len(table)} winter terms)")


def _demo_traffic() -> None:
    import numpy as np

    from repro.traffic import TrafficParams, simulate_parallel, simulate_serial

    params = TrafficParams(road_length=300, num_cars=60, seed=13)
    serial, _ = simulate_serial(params, 100)
    parallel, _ = simulate_parallel(params, 100, num_threads=4)
    assert np.array_equal(parallel.positions, serial.positions)
    print("traffic: 100 steps, 4 threads — bitwise-identical to serial "
          f"({int((serial.velocities == 0).sum())} cars in jams)")


def _demo_heat() -> None:
    import numpy as np

    from repro.chapel import set_num_locales
    from repro.heat import sine_initial_condition, solve_coforall, solve_serial

    locs = set_num_locales(3)
    u0 = sine_initial_condition(200)
    serial, _ = solve_serial(u0, 0.25, 50)
    dist, stats = solve_coforall(u0, 0.25, 50, locs)
    assert np.array_equal(serial, dist)
    print(f"heat: coforall on 3 locales identical to serial "
          f"({stats.task_spawns} task spawns, {stats.remote_puts} halo puts)")


def _demo_hpo() -> None:
    from repro.hpo import hyperparameter_grid, make_digit_dataset, run_distributed_hpo

    x, y = make_digit_dataset(400, noise=0.1, seed=0)
    grid = hyperparameter_grid(hidden_options=[(16,)], lr_options=[0.1],
                               epochs_options=[8], seeds=[0, 1, 2])
    ensemble, outcomes = run_distributed_hpo(2, grid, x[:300], y[:300], x[300:], y[300:], top_m=2)
    print(f"hpo: 3 tasks over 2 ranks, best val accuracy {outcomes[0].val_accuracy:.3f}, "
          f"ensemble of {len(ensemble)}")


_DEMOS: dict[str, Callable[[], None]] = {
    "knn": _demo_knn,
    "kmeans": _demo_kmeans,
    "pipeline": _demo_pipeline,
    "traffic": _demo_traffic,
    "heat": _demo_heat,
    "hpo": _demo_hpo,
}


def _cmd_demo(args: argparse.Namespace) -> int:
    keys = list(_DEMOS) if args.key == "all" else [args.key]
    for key in keys:
        if key not in _DEMOS:
            print(f"unknown demo {key!r}; available: {', '.join(_DEMOS)} or 'all'",
                  file=sys.stderr)
            return 2
        _DEMOS[key]()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Peachy Parallel Assignments (EduHPC 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the six assignments").set_defaults(fn=_cmd_list)
    info = sub.add_parser("info", help="show one assignment's details")
    info.add_argument("key", choices=sorted(ASSIGNMENTS))
    info.set_defaults(fn=_cmd_info)
    demo = sub.add_parser("demo", help="run a miniature verified demo")
    demo.add_argument("key", help="assignment key or 'all'")
    demo.set_defaults(fn=_cmd_demo)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
