"""Analysis tools: space-time diagrams, jams, and the fundamental diagram.

Figure 3 of the paper is a space-time plot of the Figure-3 parameter set
showing "irregularities ('traffic jams') in the flow of vehicles and how
they propagate. Without randomness, these do not occur." The functions
here regenerate that evidence quantitatively: occupancy matrices, jam
(stopped-car cluster) detection, backward jam drift, and the
flow-vs-density curve classic to the NaSch model.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.model import TrafficParams, TrafficState
from repro.traffic.serial import simulate_serial
from repro.util.validation import require_positive_int

__all__ = [
    "space_time_diagram",
    "average_velocity",
    "count_stopped",
    "detect_jams",
    "flow_rate",
    "fundamental_diagram",
    "jam_drift",
]


def space_time_diagram(trajectory: list[TrafficState]) -> np.ndarray:
    """(steps × road_length) matrix of velocities, -1 in empty cells.

    Row 0 is the earliest recorded state — the matrix Figure 3 renders.
    """
    if not trajectory:
        raise ValueError("trajectory is empty — simulate with record=True")
    return np.stack([s.occupancy() for s in trajectory])


def average_velocity(state: TrafficState) -> float:
    """Mean car velocity (0.0 for an empty road)."""
    if state.params.num_cars == 0:
        return 0.0
    return float(state.velocities.mean())


def count_stopped(state: TrafficState) -> int:
    """Number of cars with velocity 0 (the raw jam signal)."""
    return int(np.count_nonzero(state.velocities == 0))


def detect_jams(state: TrafficState, min_cars: int = 2) -> list[tuple[int, int]]:
    """Jams as runs of ≥ ``min_cars`` *consecutive* stopped cars.

    "Consecutive" means each stopped car's leader sits bumper-to-bumper
    (gap 0) and is also stopped. Returns (start_car_index, length) per
    jam, in car-index order; a jam wrapping the index origin is reported
    once.
    """
    require_positive_int("min_cars", min_cars)
    n = state.params.num_cars
    if n == 0:
        return []
    stopped = state.velocities == 0
    gaps = state.gaps()
    # Car i is "jam-linked" to its leader when both stopped and touching.
    linked = stopped & (gaps == 0) & np.roll(stopped, -1)

    jams: list[tuple[int, int]] = []
    if np.all(linked):
        return [(0, n)] if n >= min_cars else []
    # Walk runs of linked cars; a run of L links spans L+1 cars.
    i = 0
    visited = 0
    # Start scanning just after a break so wrapping runs are whole.
    while not (stopped[i] and not linked[(i - 1) % n]):
        i = (i + 1) % n
        visited += 1
        if visited > n:
            return []  # stopped cars exist but none start a run
    start = i
    while True:
        if stopped[i] and not linked[(i - 1) % n]:
            run_len = 1
            j = i
            while linked[j]:
                run_len += 1
                j = (j + 1) % n
            if run_len >= min_cars:
                jams.append((i, run_len))
            i = (j + 1) % n
        else:
            i = (i + 1) % n
        if i == start:
            break
    return jams


def flow_rate(trajectory: list[TrafficState]) -> float:
    """Mean flow q = density × mean velocity over the trajectory.

    For the NaSch model this equals the average number of cars crossing
    a fixed road section per step.
    """
    if not trajectory:
        raise ValueError("trajectory is empty")
    density = trajectory[0].params.density
    mean_v = float(np.mean([average_velocity(s) for s in trajectory]))
    return density * mean_v


def fundamental_diagram(
    road_length: int,
    densities: list[float],
    num_steps: int = 200,
    *,
    warmup: int = 100,
    p_slow: float = 0.13,
    v_max: int = 5,
    seed: int = 13,
) -> list[tuple[float, float]]:
    """Flow vs density — the NaSch model's signature curve.

    Flow rises ~linearly in the free-flow regime, peaks at a critical
    density, then falls in the congested regime. Returns (density, flow)
    pairs measured after ``warmup`` steps.
    """
    out: list[tuple[float, float]] = []
    for rho in densities:
        num_cars = max(0, min(road_length, int(round(rho * road_length))))
        params = TrafficParams(
            road_length=road_length,
            num_cars=num_cars,
            p_slow=p_slow,
            v_max=v_max,
            seed=seed,
        )
        _, trajectory = simulate_serial(params, warmup + num_steps, record=True)
        measured = trajectory[warmup + 1 :]
        if not measured:
            out.append((params.density, 0.0))
            continue
        mean_v = float(np.mean([average_velocity(s) for s in measured]))
        out.append((params.density, params.density * mean_v))
    return out


def jam_drift(spacetime: np.ndarray, window: int = 50) -> float:
    """Mean per-step displacement of the densest stopped-cell region.

    Negative values mean the jam propagates *backwards* (upstream) —
    the hallmark behaviour Figure 3 shows. Computed by tracking the
    circular center of mass of stopped cells (velocity == 0) over the
    last ``window`` recorded steps.
    """
    require_positive_int("window", window)
    stopped = spacetime == 0  # cells containing a stopped car
    length = spacetime.shape[1]
    rows = [r for r in range(max(0, spacetime.shape[0] - window), spacetime.shape[0])]
    centers = []
    for r in rows:
        cells = np.flatnonzero(stopped[r])
        if len(cells) == 0:
            continue
        # Circular mean via angles so wrapping jams track correctly.
        theta = cells * (2 * np.pi / length)
        centers.append(np.arctan2(np.sin(theta).mean(), np.cos(theta).mean()) * length / (2 * np.pi))
    if len(centers) < 2:
        return 0.0
    diffs = np.diff(np.array(centers))
    # Unwrap circular jumps.
    diffs = (diffs + length / 2) % length - length / 2
    return float(diffs.mean())
