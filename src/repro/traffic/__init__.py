"""Nagel–Schreckenberg traffic simulation — Peachy assignment §5.

A stochastic 1-D cellular automaton of single-lane circular traffic
(Nagel & Schreckenberg 1992). Each step, every car: (1) accelerates
toward ``v_max``; (2) brakes to avoid the car ahead; (3) with
probability ``p`` slows randomly — the randomness without which
"realistic phenomena such as traffic jams" would not occur; (4) moves.

The assignment's core lesson is *reproducible parallel randomness*: the
parallel code must produce **bitwise-identical** output to the serial
code for any thread count, which requires all threads to consume one
shared random sequence via fast-forwarding (:mod:`repro.rng`).

- :mod:`repro.traffic.model` — parameters and simulation state;
- :mod:`repro.traffic.serial` — the serial reference, in both the
  agent-based representation (positions/velocities vectors — the one
  that "significantly simplifies the parallelization of PRNG") and the
  grid representation (a value per road cell);
- :mod:`repro.traffic.parallel` — the shared-memory parallel version
  with a persistent thread team, per-step barriers, and per-thread
  fast-forwarded views of the shared sequence;
- :mod:`repro.traffic.analysis` — space-time diagrams (Figure 3), jam
  detection, and the fundamental (flow–density) diagram.
"""

from repro.traffic.analysis import (
    average_velocity,
    count_stopped,
    detect_jams,
    flow_rate,
    fundamental_diagram,
    space_time_diagram,
)
from repro.traffic.io import read_trajectory, write_trajectory
from repro.traffic.model import TrafficParams, TrafficState
from repro.traffic.mpi_traffic import simulate_mpi
from repro.traffic.open_road import OpenRoadParams, OpenRoadState, simulate_open_road
from repro.traffic.parallel import simulate_parallel
from repro.traffic.serial import simulate_serial, simulate_serial_grid, step_cars
from repro.traffic.study import density_sweep_cases, run_parameter_study

__all__ = [
    "TrafficParams",
    "TrafficState",
    "step_cars",
    "simulate_serial",
    "simulate_serial_grid",
    "simulate_parallel",
    "simulate_mpi",
    "space_time_diagram",
    "average_velocity",
    "count_stopped",
    "detect_jams",
    "flow_rate",
    "fundamental_diagram",
    "write_trajectory",
    "read_trajectory",
    "run_parameter_study",
    "density_sweep_cases",
    "OpenRoadParams",
    "OpenRoadState",
    "simulate_open_road",
]
