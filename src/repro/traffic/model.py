"""Parameters and state for the Nagel–Schreckenberg model.

Figure 3 of the paper uses 200 cars on a road of length 1000 with
slowdown probability p = 0.13 and maximum velocity 5; those are the
defaults here.

State is agent-based: two vectors of length N (positions and
velocities), ordered so that car ``(i+1) % N`` is always the car ahead
of car ``i`` — single-lane traffic admits no overtaking, so the circular
ordering is invariant and neighbor lookups are just index arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng.counter import CounterRNG
from repro.rng.lcg import MINSTD, LcgParams
from repro.util.validation import require_nonnegative_int, require_positive_int, require_probability

__all__ = ["TrafficParams", "TrafficState"]


@dataclass(frozen=True)
class TrafficParams:
    """Model parameters (defaults = the paper's Figure 3 configuration)."""

    road_length: int = 1000
    num_cars: int = 200
    p_slow: float = 0.13
    v_max: int = 5
    seed: int = 13
    #: LCG family supplying the shared random sequence.
    rng_params: LcgParams = MINSTD

    def __post_init__(self) -> None:
        require_positive_int("road_length", self.road_length)
        require_nonnegative_int("num_cars", self.num_cars)
        require_probability("p_slow", self.p_slow)
        require_nonnegative_int("v_max", self.v_max)
        if self.num_cars > self.road_length:
            raise ValueError(
                f"cannot place {self.num_cars} cars on a road of length {self.road_length}"
            )

    @property
    def density(self) -> float:
        """Cars per cell."""
        return self.num_cars / self.road_length


@dataclass
class TrafficState:
    """Positions and velocities of the N cars at one time step."""

    params: TrafficParams
    positions: np.ndarray
    velocities: np.ndarray
    step_index: int = 0

    @classmethod
    def initial(cls, params: TrafficParams, *, placement: str = "even") -> "TrafficState":
        """Starting state with all cars stopped.

        ``placement="even"`` spaces cars uniformly (the deterministic
        default); ``"random"`` samples distinct cells with a counter RNG
        keyed off ``params.seed`` — separate from the step-draw sequence
        so the per-step accounting (step s uses draws [s·N, (s+1)·N))
        stays exact.
        """
        n, length = params.num_cars, params.road_length
        if placement == "even":
            positions = (np.arange(n, dtype=np.int64) * length) // max(n, 1)
        elif placement == "random":
            rng = CounterRNG(seed=params.seed, stream=0x706C)  # 'pl'
            chosen: list[int] = []
            taken: set[int] = set()
            draw = 0
            while len(chosen) < n:
                cell = min(int(rng.uniform(draw) * length), length - 1)
                draw += 1
                if cell not in taken:
                    taken.add(cell)
                    chosen.append(cell)
            positions = np.array(sorted(chosen), dtype=np.int64)
        else:
            raise ValueError(f"unknown placement {placement!r}")
        return cls(
            params=params,
            positions=positions,
            velocities=np.zeros(n, dtype=np.int64),
            step_index=0,
        )

    def occupancy(self) -> np.ndarray:
        """Road view: velocity at each occupied cell, -1 where empty."""
        road = np.full(self.params.road_length, -1, dtype=np.int64)
        road[self.positions] = self.velocities
        return road

    def gaps(self) -> np.ndarray:
        """Headway of each car: empty cells between it and the car ahead."""
        length = self.params.road_length
        ahead = np.roll(self.positions, -1)
        return (ahead - self.positions - 1) % length

    def validate_invariants(self) -> None:
        """Assert no collisions and consistent shapes (test helper)."""
        assert len(np.unique(self.positions)) == len(self.positions), "two cars in one cell"
        assert self.velocities.min() >= 0
        assert self.velocities.max() <= self.params.v_max or self.params.num_cars == 0
        assert np.all((0 <= self.positions) & (self.positions < self.params.road_length))

    def copy(self) -> "TrafficState":
        """Deep copy (for recording trajectories)."""
        return TrafficState(
            params=self.params,
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            step_index=self.step_index,
        )
