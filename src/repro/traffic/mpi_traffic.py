"""Distributed-memory traffic simulation — the §5 MPI variation.

"Students could implement a distributed-memory parallel code using MPI"
(paper §5, Variations). Each rank owns a contiguous block of cars; per
step its only remote dependency is the position of the *head car of the
next non-empty block* (the leader of its last car). Each step therefore
exchanges one small collective — an ``allgather`` of block heads — and
everything else is local.

Draws still come from the shared fast-forwarded sequence, so the output
remains bitwise-identical to the serial code for any rank count: the
reproducibility contract survives the move from shared to distributed
memory.
"""

from __future__ import annotations

import numpy as np

from repro.mpi import Communicator, run_spmd
from repro.rng.streams import SharedSequence
from repro.traffic.model import TrafficParams, TrafficState
from repro.util.partition import block_bounds
from repro.util.validation import require_nonnegative_int

__all__ = ["traffic_rank_program", "simulate_mpi"]


def traffic_rank_program(
    comm: Communicator,
    params: TrafficParams,
    num_steps: int,
    *,
    placement: str = "even",
) -> np.ndarray:
    """SPMD rank body: simulate this rank's block of cars.

    Returns this rank's final (positions, velocities) stack; the
    launcher concatenates rank results in order.
    """
    n, length, v_max, p = params.num_cars, params.road_length, params.v_max, params.p_slow
    require_nonnegative_int("num_steps", num_steps)
    init = TrafficState.initial(params, placement=placement)
    lo, hi = block_bounds(n, comm.size, comm.rank)
    my_pos = init.positions[lo:hi].copy()
    my_vel = init.velocities[lo:hi].copy()
    sequence = SharedSequence(params.rng_params, params.seed)
    gen = sequence.generator_at(lo) if hi > lo else None

    for _ in range(num_steps):
        # One collective per step: every rank publishes its head car's
        # position (or None for an empty block).
        my_head = int(my_pos[0]) if hi > lo else None
        heads = comm.allgather(my_head)

        if hi > lo:
            # Leader of my last car = head of the next non-empty block
            # (cyclically); with a single non-empty block that is my own
            # head again — the lone-platoon wraparound.
            leader_head = my_head
            for offset in range(1, comm.size + 1):
                candidate = heads[(comm.rank + offset) % comm.size]
                if candidate is not None:
                    leader_head = candidate
                    break

            leaders = np.empty_like(my_pos)
            leaders[:-1] = my_pos[1:]
            leaders[-1] = leader_head
            gaps = (leaders - my_pos - 1) % length
            draws = np.array([gen.next_uniform() for _ in range(hi - lo)])
            v = np.minimum(my_vel + 1, v_max)
            v = np.minimum(v, gaps)
            v = np.where(draws < p, np.maximum(v - 1, 0), v)
            my_pos = (my_pos + v) % length
            my_vel = v
            # Skip the other ranks' draws for this step: one O(log n) jump.
            gen.jump(n - (hi - lo))

    return np.stack([my_pos, my_vel]) if hi > lo else np.empty((2, 0), dtype=np.int64)


def simulate_mpi(
    params: TrafficParams,
    num_steps: int,
    num_ranks: int,
    *,
    placement: str = "even",
) -> TrafficState:
    """Launcher: run the distributed simulation, return the final state."""
    results = run_spmd(num_ranks, traffic_rank_program, params, num_steps, placement=placement)
    positions = np.concatenate([r[0] for r in results]).astype(np.int64)
    velocities = np.concatenate([r[1] for r in results]).astype(np.int64)
    return TrafficState(
        params=params,
        positions=positions,
        velocities=velocities,
        step_index=num_steps,
    )
