"""Serial Nagel–Schreckenberg reference implementations.

The update rule (one time step, all cars simultaneously, using the
*previous* step's positions):

1. accelerate: ``v ← min(v + 1, v_max)``
2. brake:      ``v ← min(v, gap)`` where gap = empty cells to the car ahead
3. randomize:  with probability ``p``, ``v ← max(v − 1, 0)``
4. move:       ``x ← (x + v) mod L``

Step ``s`` consumes exactly ``N`` uniform draws — draw ``s·N + i``
belongs to car ``i``. Making the draw↔car mapping explicit is what lets
the parallel version (and even the grid representation) reproduce the
serial output exactly: any worker can compute any car's coin by pure
random access into the shared sequence.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import SharedSequence
from repro.traffic.model import TrafficParams, TrafficState
from repro.util.validation import require_nonnegative_int

__all__ = ["step_cars", "simulate_serial", "simulate_serial_grid"]


def step_cars(state: TrafficState, draws: np.ndarray) -> TrafficState:
    """One synchronous update of all cars; ``draws[i]`` is car ``i``'s coin.

    Pure function: returns a new state, never mutates the input.
    """
    params = state.params
    n = params.num_cars
    if len(draws) != n:
        raise ValueError(f"need exactly {n} draws, got {len(draws)}")
    if n == 0:
        return TrafficState(params, state.positions.copy(), state.velocities.copy(), state.step_index + 1)

    gaps = state.gaps()
    v = np.minimum(state.velocities + 1, params.v_max)   # 1. accelerate
    v = np.minimum(v, gaps)                              # 2. brake
    slow = np.asarray(draws) < params.p_slow             # 3. randomize
    v = np.where(slow, np.maximum(v - 1, 0), v)
    positions = (state.positions + v) % params.road_length  # 4. move
    return TrafficState(params, positions.astype(np.int64), v.astype(np.int64), state.step_index + 1)


def simulate_serial(
    params: TrafficParams,
    num_steps: int,
    *,
    placement: str = "even",
    record: bool = False,
) -> tuple[TrafficState, list[TrafficState]]:
    """Run the agent-based serial simulation.

    Returns (final_state, trajectory) where trajectory contains the
    initial state and every step's state if ``record`` else is empty.
    """
    require_nonnegative_int("num_steps", num_steps)
    sequence = SharedSequence(params.rng_params, params.seed)
    state = TrafficState.initial(params, placement=placement)
    trajectory: list[TrafficState] = [state.copy()] if record else []
    gen = sequence.generator_at(0)
    for step in range(num_steps):
        draws = np.array([gen.next_uniform() for _ in range(params.num_cars)])
        state = step_cars(state, draws)
        if record:
            trajectory.append(state.copy())
    return state, trajectory


def simulate_serial_grid(
    params: TrafficParams,
    num_steps: int,
    *,
    placement: str = "even",
    record: bool = False,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Run the grid-representation serial simulation.

    The road is an array with ``-1`` for empty cells and the car's
    velocity otherwise; car identity is tracked alongside so each car
    uses *its own* draw of the step batch (draw ``s·N + car``). This is
    the bookkeeping burden the paper alludes to when it says the
    agent-based approach "significantly simplifies the parallelization
    of PRNG" — the physics is identical, as the tests verify.

    Returns (final_road, trajectory-of-road-arrays).
    """
    require_nonnegative_int("num_steps", num_steps)
    length, n, v_max, p = params.road_length, params.num_cars, params.v_max, params.p_slow
    sequence = SharedSequence(params.rng_params, params.seed)

    init = TrafficState.initial(params, placement=placement)
    velocity = np.full(length, -1, dtype=np.int64)   # -1 = empty
    car_id = np.full(length, -1, dtype=np.int64)
    velocity[init.positions] = 0
    car_id[init.positions] = np.arange(n)

    trajectory: list[np.ndarray] = [velocity.copy()] if record else []
    for step in range(num_steps):
        draws = sequence.draws(step * n, n)
        new_velocity = np.full(length, -1, dtype=np.int64)
        new_car_id = np.full(length, -1, dtype=np.int64)
        occupied = np.flatnonzero(velocity >= 0)
        for cell in occupied:
            # Distance to the next occupied cell ahead (circular scan).
            gap = 0
            probe = (cell + 1) % length
            while velocity[probe] < 0 and gap < v_max + 1:
                gap += 1
                probe = (probe + 1) % length
            v = min(velocity[cell] + 1, v_max, gap)
            if draws[car_id[cell]] < p:
                v = max(v - 1, 0)
            dest = (cell + v) % length
            new_velocity[dest] = v
            new_car_id[dest] = car_id[cell]
        velocity, car_id = new_velocity, new_car_id
        if record:
            trajectory.append(velocity.copy())
    return velocity, trajectory
