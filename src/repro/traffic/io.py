"""Self-describing binary trajectory files — the §5 NetCDF variation.

"In other variations we have used in the past, we have asked students
… to adapt the output to use the NetCDF library" (paper §5). No NetCDF
exists offline, so this module implements the *concept* the variation
teaches — a self-describing format: a file that carries its own schema
(dimension names and sizes, variable names, dtypes, and attributes), so
a reader needs no out-of-band knowledge.

Layout (all little-endian):

    magic  b"TRJ1"
    header JSON (length-prefixed, uint32): dims, variables, attributes
    data   for each variable in header order: raw C-order array bytes

The format is deliberately tiny but honest: round-trips exactly, and
the reader validates magic, schema, and payload sizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.traffic.model import TrafficParams, TrafficState

__all__ = ["TrajectoryFile", "write_trajectory", "read_trajectory"]

_MAGIC = b"TRJ1"


@dataclass
class TrajectoryFile:
    """In-memory image of a trajectory file: schema + arrays."""

    dims: dict[str, int]
    variables: dict[str, np.ndarray]
    attributes: dict[str, object] = field(default_factory=dict)

    def save(self, path: str | Path) -> None:
        """Serialize to the self-describing binary layout."""
        header = {
            "dims": self.dims,
            "attributes": self.attributes,
            "variables": [
                {
                    "name": name,
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                }
                for name, arr in self.variables.items()
            ],
        }
        for name, arr in self.variables.items():
            for axis_len in arr.shape:
                if axis_len not in self.dims.values():
                    raise ValueError(
                        f"variable {name!r} has axis length {axis_len} not matching any dimension"
                    )
        blob = json.dumps(header).encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(np.uint32(len(blob)).tobytes())
            fh.write(blob)
            for arr in self.variables.values():
                fh.write(np.ascontiguousarray(arr).tobytes())

    @classmethod
    def load(cls, path: str | Path) -> "TrajectoryFile":
        """Parse and validate a file written by :meth:`save`."""
        raw = Path(path).read_bytes()
        if raw[:4] != _MAGIC:
            raise ValueError(f"not a TRJ1 file: bad magic {raw[:4]!r}")
        header_len = int(np.frombuffer(raw[4:8], dtype=np.uint32)[0])
        header = json.loads(raw[8 : 8 + header_len].decode("utf-8"))
        offset = 8 + header_len
        variables: dict[str, np.ndarray] = {}
        for spec in header["variables"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
            chunk = raw[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError(
                    f"truncated payload for variable {spec['name']!r}: "
                    f"wanted {nbytes} bytes, file has {len(chunk)}"
                )
            variables[spec["name"]] = np.frombuffer(chunk, dtype=dtype).reshape(shape).copy()
            offset += nbytes
        if offset != len(raw):
            raise ValueError(f"{len(raw) - offset} trailing bytes after last variable")
        return cls(
            dims={k: int(v) for k, v in header["dims"].items()},
            variables=variables,
            attributes=header.get("attributes", {}),
        )


def write_trajectory(path: str | Path, trajectory: list[TrafficState]) -> None:
    """Store a recorded simulation as a self-describing file."""
    if not trajectory:
        raise ValueError("trajectory is empty")
    params = trajectory[0].params
    positions = np.stack([s.positions for s in trajectory])
    velocities = np.stack([s.velocities for s in trajectory])
    TrajectoryFile(
        dims={"step": len(trajectory), "car": params.num_cars},
        variables={"positions": positions, "velocities": velocities},
        attributes={
            "model": "nagel-schreckenberg",
            "road_length": params.road_length,
            "num_cars": params.num_cars,
            "p_slow": params.p_slow,
            "v_max": params.v_max,
            "seed": params.seed,
            "rng": params.rng_params.name,
        },
    ).save(path)


def read_trajectory(path: str | Path) -> tuple[TrafficParams, list[TrafficState]]:
    """Reconstruct (params, trajectory) from a file — schema included."""
    image = TrajectoryFile.load(path)
    attrs = image.attributes
    params = TrafficParams(
        road_length=int(attrs["road_length"]),
        num_cars=int(attrs["num_cars"]),
        p_slow=float(attrs["p_slow"]),
        v_max=int(attrs["v_max"]),
        seed=int(attrs["seed"]),
    )
    positions = image.variables["positions"]
    velocities = image.variables["velocities"]
    trajectory = [
        TrafficState(params, positions[i].copy(), velocities[i].copy(), step_index=i)
        for i in range(image.dims["step"])
    ]
    return params, trajectory
