"""Open boundary conditions — the §5 "change boundary conditions" variation.

The baseline model is a ring (periodic boundary). The classic open
variant models a road *segment*: cars are injected at the left end with
probability ``p_in`` per step (when cell 0 is free) and removed when
they drive past the right end with probability ``p_out`` (otherwise the
last car is held, creating a bottleneck). This reproduces the boundary-
induced phase transitions of the open NaSch/ASEP family: low ``p_out``
queues traffic back from the exit regardless of inflow.

Randomness bookkeeping extends the closed-road contract: each step
consumes exactly ``road_length + 2`` shared-sequence draws — one per
*cell slot* (so car draws are position-indexed, stable under entry/exit)
plus one inflow and one outflow coin. Parallel variants of this model
can therefore use the same fast-forward reproducibility argument; the
serial implementation here is the reference they would be tested
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng.streams import SharedSequence
from repro.traffic.model import TrafficParams
from repro.util.validation import require_nonnegative_int, require_probability

__all__ = ["OpenRoadParams", "OpenRoadState", "simulate_open_road"]


@dataclass(frozen=True)
class OpenRoadParams:
    """Open-segment parameters: the ring's, plus boundary rates."""

    road_length: int = 200
    p_slow: float = 0.13
    v_max: int = 5
    p_in: float = 0.5
    p_out: float = 0.8
    seed: int = 13

    def __post_init__(self) -> None:
        base = TrafficParams(
            road_length=self.road_length,
            num_cars=0,
            p_slow=self.p_slow,
            v_max=self.v_max,
            seed=self.seed,
        )
        del base
        require_probability("p_in", self.p_in)
        require_probability("p_out", self.p_out)


@dataclass
class OpenRoadState:
    """Cars currently on the segment, ordered by increasing position."""

    params: OpenRoadParams
    positions: np.ndarray
    velocities: np.ndarray
    step_index: int = 0
    entered_total: int = 0
    exited_total: int = 0

    def validate_invariants(self) -> None:
        """No collisions, ordered positions, bounded velocities."""
        assert np.all(np.diff(self.positions) > 0), "cars out of order / colliding"
        assert np.all((self.positions >= 0) & (self.positions < self.params.road_length))
        assert np.all((self.velocities >= 0) & (self.velocities <= self.params.v_max))

    @property
    def num_cars(self) -> int:
        """Cars currently on the segment."""
        return len(self.positions)


def simulate_open_road(
    params: OpenRoadParams, num_steps: int, *, record: bool = False
) -> tuple[OpenRoadState, list[OpenRoadState]]:
    """Evolve an initially-empty open segment for ``num_steps``.

    Returns (final_state, trajectory-if-recorded).
    """
    require_nonnegative_int("num_steps", num_steps)
    length, v_max, p = params.road_length, params.v_max, params.p_slow
    sequence = SharedSequence(TrafficParams().rng_params, params.seed)
    draws_per_step = length + 2

    positions = np.empty(0, dtype=np.int64)
    velocities = np.empty(0, dtype=np.int64)
    entered = exited = 0
    trajectory: list[OpenRoadState] = []

    def snapshot(step: int) -> OpenRoadState:
        return OpenRoadState(
            params, positions.copy(), velocities.copy(), step, entered, exited
        )

    if record:
        trajectory.append(snapshot(0))

    for step in range(num_steps):
        base = step * draws_per_step
        # Per-cell-slot draws keep car coins stable under entry/exit.
        cell_draws = sequence.draws(base, length)
        in_coin, out_coin = sequence.draws(base + length, 2)

        n = len(positions)
        if n:
            # Gap to the car ahead; the right-most car sees open road.
            gaps = np.empty(n, dtype=np.int64)
            gaps[:-1] = positions[1:] - positions[:-1] - 1
            gaps[-1] = length  # unobstructed toward the exit
            v = np.minimum(velocities + 1, v_max)
            v = np.minimum(v, gaps)
            slow = cell_draws[positions] < p
            v = np.where(slow, np.maximum(v - 1, 0), v)
            new_positions = positions + v

            # Outflow: a car crossing the right end leaves with p_out;
            # otherwise it parks on the last cell (the bottleneck).
            if new_positions[-1] >= length:
                if out_coin < params.p_out:
                    new_positions = new_positions[:-1]
                    v = v[:-1]
                    exited += 1
                else:
                    new_positions[-1] = length - 1
                    v[-1] = 0
            positions, velocities = new_positions, v

        # Inflow: with p_in, a stopped car appears on cell 0 if free.
        if in_coin < params.p_in and (len(positions) == 0 or positions[0] > 0):
            positions = np.concatenate([[np.int64(0)], positions])
            velocities = np.concatenate([[np.int64(0)], velocities])
            entered += 1

        if record:
            trajectory.append(snapshot(step + 1))

    return snapshot(num_steps), trajectory
