"""Embarrassingly-parallel parameter studies — another §5 variation.

"Students could … run a series of parameter study cases and take
advantage of embarrassingly parallel jobs" (paper §5). A parameter
study is a list of independent simulations; this module distributes
them over SPMD ranks with the same round-robin task map the HPO
assignment teaches, and collects per-case summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi import Communicator, run_spmd
from repro.traffic.analysis import average_velocity, count_stopped, flow_rate
from repro.traffic.model import TrafficParams
from repro.traffic.serial import simulate_serial

__all__ = ["CaseResult", "run_parameter_study", "density_sweep_cases"]


@dataclass(frozen=True)
class CaseResult:
    """Summary statistics of one simulated case."""

    params: TrafficParams
    mean_velocity: float
    flow: float
    stopped_final: int

    @property
    def density(self) -> float:
        """Cars per cell for this case."""
        return self.params.density


def _simulate_case(params: TrafficParams, num_steps: int, warmup: int) -> CaseResult:
    _, trajectory = simulate_serial(params, warmup + num_steps, record=True)
    measured = trajectory[warmup + 1 :]
    mean_v = float(np.mean([average_velocity(s) for s in measured])) if measured else 0.0
    return CaseResult(
        params=params,
        mean_velocity=mean_v,
        flow=flow_rate(measured) if measured else 0.0,
        stopped_final=count_stopped(trajectory[-1]),
    )


def run_parameter_study(
    cases: list[TrafficParams],
    num_steps: int,
    *,
    num_workers: int = 4,
    warmup: int = 50,
) -> list[CaseResult]:
    """Simulate every case, distributing cases round-robin over SPMD ranks.

    Results come back in case order regardless of which rank ran what —
    the embarrassingly-parallel pattern with deterministic assembly.
    """
    if not cases:
        return []
    num_workers = min(num_workers, len(cases))

    def program(comm: Communicator) -> list[tuple[int, CaseResult]]:
        mine = []
        for case_id in range(comm.rank, len(cases), comm.size):
            mine.append((case_id, _simulate_case(cases[case_id], num_steps, warmup)))
        gathered = comm.allgather(mine)
        merged = {cid: result for rank_list in gathered for cid, result in rank_list}
        return [merged[c] for c in range(len(cases))]

    return run_spmd(num_workers, program)[0]


def density_sweep_cases(
    road_length: int,
    densities: list[float],
    *,
    p_slow: float = 0.13,
    v_max: int = 5,
    seed: int = 13,
) -> list[TrafficParams]:
    """The canonical study: one case per target density."""
    cases = []
    for rho in densities:
        num_cars = max(0, min(road_length, int(round(rho * road_length))))
        cases.append(
            TrafficParams(
                road_length=road_length,
                num_cars=num_cars,
                p_slow=p_slow,
                v_max=v_max,
                seed=seed,
            )
        )
    return cases
