"""Shared-memory parallel Nagel–Schreckenberg with exact reproducibility.

The assignment's deliverable (paper §5): an OpenMP version whose output
is *identical to the serial code for any number of threads*. The naive
parallelization — one independently-seeded PRNG per thread — fails that
requirement; the correct one makes every thread read its cars' draws
from the single shared sequence by fast-forwarding.

Structure (mirroring the ``parallel`` / ``for`` / ``threadprivate``
directives students use):

- one persistent thread team for the whole run (task-reuse, as in the
  heat assignment's part 2);
- each thread owns a contiguous block of cars (static schedule);
- each thread holds a *threadprivate* generator clone, fast-forwarded
  once to its first draw and then advanced by ``N - block`` positions
  per step (one O(log n) jump), so fast-forward cost is amortized;
- two barriers per step separate read-compute from publish (all cars
  update from the previous step's global arrays).
"""

from __future__ import annotations

import numpy as np

from repro.openmp import parallel_region
from repro.rng.streams import SharedSequence
from repro.traffic.model import TrafficParams, TrafficState
from repro.util.partition import block_bounds
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["simulate_parallel"]


def simulate_parallel(
    params: TrafficParams,
    num_steps: int,
    num_threads: int,
    *,
    placement: str = "even",
    record: bool = False,
) -> tuple[TrafficState, list[TrafficState]]:
    """Parallel simulation, bitwise-equal to :func:`simulate_serial`.

    Returns (final_state, trajectory) like the serial API.
    """
    require_nonnegative_int("num_steps", num_steps)
    require_positive_int("num_threads", num_threads)
    n, length, v_max, p = params.num_cars, params.road_length, params.v_max, params.p_slow
    sequence = SharedSequence(params.rng_params, params.seed)

    state = TrafficState.initial(params, placement=placement)
    positions = state.positions.copy()
    velocities = state.velocities.copy()
    new_positions = np.empty_like(positions)
    new_velocities = np.empty_like(velocities)
    trajectory: list[TrafficState] = [state.copy()] if record else []

    if n == 0 or num_steps == 0:
        final = TrafficState(params, positions, velocities, num_steps)
        return final, trajectory

    def worker(ctx) -> None:
        nonlocal positions, velocities, new_positions, new_velocities
        lo, hi = block_bounds(n, ctx.num_threads, ctx.thread_id)
        block = hi - lo
        # threadprivate generator: positioned at this thread's draws of step 0.
        gen = sequence.generator_at(lo) if block else None

        for step in range(num_steps):
            if block:
                draws = np.array([gen.next_uniform() for _ in range(block)])
                # Neighbor reads may cross the block boundary; positions
                # is the *previous* step's array, frozen until the barrier.
                ahead = positions[(np.arange(lo, hi) + 1) % n]
                gaps = (ahead - positions[lo:hi] - 1) % length
                v = np.minimum(velocities[lo:hi] + 1, v_max)
                v = np.minimum(v, gaps)
                v = np.where(draws < p, np.maximum(v - 1, 0), v)
                new_positions[lo:hi] = (positions[lo:hi] + v) % length
                new_velocities[lo:hi] = v
                # Jump over the other threads' draws of this step: one
                # O(log n) fast-forward instead of n - block serial steps.
                gen.jump(n - block)
            ctx.barrier()  # all blocks published
            if ctx.master():
                positions, new_positions = new_positions, positions
                velocities, new_velocities = new_velocities, velocities
                if record:
                    trajectory.append(
                        TrafficState(params, positions.copy(), velocities.copy(), step + 1)
                    )
            ctx.barrier()  # swap visible to everyone before next step

    parallel_region(num_threads, worker)
    final = TrafficState(params, positions.copy(), velocities.copy(), num_steps)
    return final, trajectory
