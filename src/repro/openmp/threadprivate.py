"""Thread-private persistent storage — the ``threadprivate`` pragma.

The traffic assignment lists ``threadprivate`` among the OpenMP
directives students need (paper §5): each thread keeps its own PRNG
clone that persists across parallel regions. :class:`ThreadPrivate`
wraps ``threading.local`` with a factory so first touch initializes the
per-thread copy, and adds the bookkeeping needed to enumerate live
copies (useful for tests and for merging at shutdown).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["ThreadPrivate"]


class ThreadPrivate(Generic[T]):
    """Lazily-initialized per-thread value.

    >>> counter = ThreadPrivate(lambda: [0])
    >>> counter.value[0] += 1
    >>> counter.value
    [1]
    """

    def __init__(self, factory: Callable[[], T]) -> None:
        self._factory = factory
        self._store = threading.local()
        self._instances: list[tuple[str, T]] = []
        self._guard = threading.Lock()

    @property
    def value(self) -> T:
        """This thread's copy, created on first access."""
        try:
            return self._store.value
        except AttributeError:
            created = self._factory()
            self._store.value = created
            with self._guard:
                self._instances.append((threading.current_thread().name, created))
            return created

    def set(self, value: T) -> None:
        """Replace this thread's copy (counts as a touch)."""
        _ = self.value  # ensure registration
        self._store.value = value
        with self._guard:
            name = threading.current_thread().name
            for i, (n, _) in enumerate(self._instances):
                if n == name:
                    self._instances[i] = (name, value)
                    break

    def instances(self) -> list[T]:
        """All per-thread copies created so far (for inspection/merging)."""
        with self._guard:
            return [v for _, v in self._instances]
