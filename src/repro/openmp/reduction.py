"""Reductions — the ``reduction`` clause, the top rung of the k-means ladder.

The assignment's stage 4 asks students to "detect situations where a
reduction can eliminate a race condition": instead of serializing every
update through a critical section or atomic, each thread accumulates
into a *private* copy and the copies are merged once. That pattern is
captured two ways:

- :class:`ReductionVar`, used inside a :func:`repro.openmp.parallel_region`
  when the region does more than one reduction;
- :func:`parallel_reduce`, the one-shot convenience wrapper.
"""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.openmp.region import TeamContext, parallel_region
from repro.sanitizer.runtime import get_sanitizer
from repro.util.partition import block_bounds

__all__ = ["ReductionVar", "parallel_reduce"]


class ReductionVar:
    """Per-thread private accumulators merged deterministically at the end.

    Create one *before* the parallel region; inside, each thread mutates
    ``var.local(ctx)``; after the region, :meth:`result` folds the
    private copies **in thread-id order** with ``op`` starting from a
    fresh identity — deterministic even for float addition.
    """

    def __init__(
        self, identity_factory: Callable[[], Any], op: Callable[[Any, Any], Any], num_threads: int
    ) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self._op = op
        self._identity_factory = identity_factory
        self._locals: list[Any] = [identity_factory() for _ in range(num_threads)]

    def _slot(self, sanitizer, thread_id: int) -> str:
        return f"{sanitizer.cell_name(self, 'reduction')}:t{thread_id}"

    def local(self, ctx: TeamContext) -> Any:
        """This thread's private accumulator (mutate freely, no locks needed)."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            # Mutating the returned accumulator writes this thread's slot.
            sanitizer.mem_write(self._slot(sanitizer, ctx.thread_id), "ReductionVar.local")
        return self._locals[ctx.thread_id]

    def set_local(self, ctx: TeamContext, value: Any) -> None:
        """Replace this thread's private accumulator (for immutable scalars)."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            sanitizer.mem_write(self._slot(sanitizer, ctx.thread_id), "ReductionVar.set_local")
        self._locals[ctx.thread_id] = value

    def result(self) -> Any:
        """Fold the private copies in thread order; call after the region joins."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            # The merge reads every slot; the team join orders it after the writes.
            for thread_id in range(len(self._locals)):
                sanitizer.mem_read(self._slot(sanitizer, thread_id), "ReductionVar.result")
        acc = self._identity_factory()
        for part in self._locals:
            acc = self._op(acc, part)
        return acc


def parallel_reduce(
    n: int,
    num_threads: int,
    local_fn: Callable[[int, int], Any],
    op: Callable[[Any, Any], Any],
    identity: Any = None,
) -> Any:
    """Reduce over ``range(n)``: each thread computes ``local_fn(lo, hi)``
    on its static block, and the partials fold in thread order with ``op``.

    ``identity`` seeds the fold when given (copied per call so mutable
    identities are safe); otherwise the fold starts from thread 0's
    partial.

    >>> parallel_reduce(100, 4, lambda lo, hi: sum(range(lo, hi)), lambda a, b: a + b)
    4950
    """
    partials = parallel_region(
        num_threads,
        lambda ctx: local_fn(*block_bounds(n, ctx.num_threads, ctx.thread_id)),
    )
    if identity is not None:
        acc = copy.deepcopy(identity)
        start = 0
    else:
        acc = partials[0]
        start = 1
    for part in partials[start:]:
        acc = op(acc, part)
    return acc
