"""Atomic cells — the ``omp atomic`` pragma, rung three of the k-means ladder.

CPython's GIL makes single bytecode operations atomic in practice, but
compound read-modify-write (``x += 1``) is not: the interpreter can
switch threads between the read and the write. :class:`Atomic` makes
the race explicit and fixes it with a per-cell guarded section, exactly
the progression (racy update → guarded update) the assignment teaches.
:class:`RacyCell` is the rung-zero counterpart: the same interface with
the guard deliberately removed, so the race detector has a true data
race to find and the schedule explorer has a lost update to manifest.

Every read-modify-write helper runs its read, its compute, and its
write inside **one** guarded section and returns the value it wrote
(or, for ``fetch_add``, the value it replaced) — under contention the
returned values are therefore always a consistent linearization: N
threads each calling ``add(1)`` on a zero cell observe exactly the
post-values ``1..N``, each once. ``tests/sanitizer/test_atomic_hammer.py``
hammers that contract across explored schedules, and shows the
unguarded :class:`RacyCell` failing it via the detector.

Under an active :mod:`repro.sanitizer` the section additionally feeds
release/acquire edges to the happens-before detector and preemption
points to the schedule explorer; disabled, each operation pays one
module-global read.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.sanitizer.runtime import get_sanitizer

__all__ = ["Atomic", "RacyCell"]


class Atomic:
    """A guarded scalar supporting atomic read-modify-write.

    ``name`` (optional) labels the cell in sanitizer race reports; left
    unset, the active sanitizer assigns ``atomic#<n>`` in first-use
    order, which is deterministic under the schedule explorer.

    >>> cell = Atomic(0)
    >>> cell.add(5)
    5
    >>> cell.value
    5
    """

    __slots__ = ("_value", "_lock", "_name")

    def __init__(self, value: Any = 0, *, name: str | None = None) -> None:
        self._value = value
        # Reentrant so cell operations compose inside the cell's own
        # guarded() section (the sanitizer's cooperative lock allows the
        # same reentry via owner counts).
        self._lock = threading.RLock()
        self._name = name

    def _cell(self, sanitizer) -> str:
        return self._name if self._name is not None else sanitizer.cell_name(self, "atomic")

    def _rmw(self, fn: Callable[[Any], Any], label: str) -> Any:
        """Run ``value = fn(value)`` in one guarded section; return the new value."""
        sanitizer = get_sanitizer()
        if sanitizer is None:
            with self._lock:
                self._value = fn(self._value)
                return self._value
        cell = self._cell(sanitizer)
        with sanitizer.guard(("atomic-lock", cell), self._lock):
            sanitizer.mem_write(cell, label)
            self._value = fn(self._value)
            return self._value

    @property
    def value(self) -> Any:
        """Current value (a guarded read)."""
        sanitizer = get_sanitizer()
        if sanitizer is None:
            with self._lock:
                return self._value
        cell = self._cell(sanitizer)
        with sanitizer.guard(("atomic-lock", cell), self._lock):
            sanitizer.mem_read(cell, "Atomic.value")
            return self._value

    def store(self, value: Any) -> None:
        """Atomic overwrite."""
        self._rmw(lambda _old: value, "Atomic.store")

    def add(self, delta: Any) -> Any:
        """Atomic ``+=``; returns the new value."""
        return self._rmw(lambda old: old + delta, "Atomic.add")

    def fetch_add(self, delta: Any) -> Any:
        """Atomic ``+=``; returns the **previous** value (C++ ``fetch_add``)."""
        sanitizer = get_sanitizer()
        if sanitizer is None:
            with self._lock:
                previous = self._value
                self._value = previous + delta
                return previous
        cell = self._cell(sanitizer)
        with sanitizer.guard(("atomic-lock", cell), self._lock):
            sanitizer.mem_write(cell, "Atomic.fetch_add")
            previous = self._value
            self._value = previous + delta
            return previous

    def exchange(self, value: Any) -> Any:
        """Atomically replace the value; returns the **previous** value."""
        sanitizer = get_sanitizer()
        if sanitizer is None:
            with self._lock:
                previous = self._value
                self._value = value
                return previous
        cell = self._cell(sanitizer)
        with sanitizer.guard(("atomic-lock", cell), self._lock):
            sanitizer.mem_write(cell, "Atomic.exchange")
            previous = self._value
            self._value = value
            return previous

    def max(self, other: Any) -> Any:
        """Atomic ``x = max(x, other)``; returns the new value."""
        return self._rmw(lambda old: other if other > old else old, "Atomic.max")

    def min(self, other: Any) -> Any:
        """Atomic ``x = min(x, other)``; returns the new value."""
        return self._rmw(lambda old: other if other < old else old, "Atomic.min")

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Atomic ``x = fn(x)`` for arbitrary pure ``fn``; returns the new value."""
        return self._rmw(fn, "Atomic.update")

    def compare_exchange(self, expected: Any, desired: Any) -> bool:
        """Set to ``desired`` iff currently ``expected``; True on success."""
        sanitizer = get_sanitizer()
        if sanitizer is None:
            with self._lock:
                if self._value == expected:
                    self._value = desired
                    return True
                return False
        cell = self._cell(sanitizer)
        with sanitizer.guard(("atomic-lock", cell), self._lock):
            sanitizer.mem_write(cell, "Atomic.compare_exchange")
            if self._value == expected:
                self._value = desired
                return True
            return False

    def guarded(self):
        """The cell's guarded section, for multi-statement updates.

        ``with cell.guarded(): …`` serializes the block against every
        other operation on this cell — the public replacement for
        reaching into the private lock, and instrumented under an
        active sanitizer.
        """
        sanitizer = get_sanitizer()
        if sanitizer is None:
            return self._lock
        return sanitizer.guard(("atomic-lock", self._cell(sanitizer)), self._lock)

    def __repr__(self) -> str:
        return f"Atomic({self.value!r})"


class RacyCell:
    """The UNGUARDED scalar: rung zero of the ladder, kept for the detector.

    Same interface as :class:`Atomic` but every read-modify-write is a
    bare read → compute → write with **no** mutual exclusion — the
    cluster-change counter of the racy k-means rung. Under the schedule
    explorer the gap between the read and the write is a preemption
    point, so lost updates genuinely manifest on adverse schedules, and
    the happens-before detector flags the unordered accesses on *every*
    schedule.
    """

    __slots__ = ("_value", "name")

    def __init__(self, value: Any = 0, *, name: str = "racy-cell") -> None:
        self._value = value
        self.name = name

    @property
    def value(self) -> Any:
        """Current value (a bare, annotated read)."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            sanitizer.mem_read(self.name, f"{self.name}:RacyCell.value")
        return self._value

    def store(self, value: Any) -> None:
        """Bare overwrite (annotated)."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            sanitizer.mem_write(self.name, f"{self.name}:RacyCell.store")
        self._value = value

    def add(self, delta: Any) -> Any:
        """The textbook racy ``+=``: read, (preemptible) compute, write."""
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            sanitizer.mem_read(self.name, f"{self.name}:RacyCell.add:read")
        new = self._value + delta
        if sanitizer is not None:
            # The window another thread's update disappears into.
            sanitizer.yield_point()
            sanitizer.mem_write(self.name, f"{self.name}:RacyCell.add:write")
        self._value = new
        return new

    def __repr__(self) -> str:
        return f"RacyCell({self._value!r}, name={self.name!r})"
