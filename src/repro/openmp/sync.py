"""Atomic cells — the ``omp atomic`` pragma, rung three of the k-means ladder.

CPython's GIL makes single bytecode operations atomic in practice, but
compound read-modify-write (``x += 1``) is not: the interpreter can
switch threads between the read and the write. :class:`Atomic` makes
the race explicit and fixes it with a per-cell lock, exactly the
progression (racy update → guarded update) the assignment teaches.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["Atomic"]


class Atomic:
    """A lock-protected scalar supporting atomic read-modify-write.

    >>> cell = Atomic(0)
    >>> cell.add(5)
    5
    >>> cell.value
    5
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    @property
    def value(self) -> Any:
        """Current value (plain read)."""
        with self._lock:
            return self._value

    def store(self, value: Any) -> None:
        """Atomic overwrite."""
        with self._lock:
            self._value = value

    def add(self, delta: Any) -> Any:
        """Atomic ``+=``; returns the new value."""
        with self._lock:
            self._value = self._value + delta
            return self._value

    def max(self, other: Any) -> Any:
        """Atomic ``x = max(x, other)``; returns the new value."""
        with self._lock:
            if other > self._value:
                self._value = other
            return self._value

    def min(self, other: Any) -> Any:
        """Atomic ``x = min(x, other)``; returns the new value."""
        with self._lock:
            if other < self._value:
                self._value = other
            return self._value

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Atomic ``x = fn(x)`` for arbitrary pure ``fn``; returns the new value."""
        with self._lock:
            self._value = fn(self._value)
            return self._value

    def compare_exchange(self, expected: Any, desired: Any) -> bool:
        """Set to ``desired`` iff currently ``expected``; True on success."""
        with self._lock:
            if self._value == expected:
                self._value = desired
                return True
            return False

    def __repr__(self) -> str:
        return f"Atomic({self.value!r})"
