"""The ``sections`` and ``ordered`` constructs.

Two remaining OpenMP worksharing idioms the courses touch on:

- :func:`parallel_sections` — N independent code blocks distributed
  over a team (``omp sections``); each section runs exactly once, on
  some thread;
- :class:`OrderedRegion` — inside a parallel loop, force a sub-block to
  execute in *iteration order* (``omp ordered``): threads compute in
  parallel but commit sequentially — the pattern for ordered output
  from a parallel loop.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.openmp.region import parallel_region
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["parallel_sections", "OrderedRegion"]


def parallel_sections(
    sections: Sequence[Callable[[], Any]], num_threads: int | None = None
) -> list[Any]:
    """Run each section exactly once, spread over a thread team.

    Returns results in section order. ``num_threads`` defaults to the
    number of sections (the common OpenMP configuration).
    """
    if not sections:
        raise ValueError("need at least one section")
    threads = num_threads or len(sections)
    require_positive_int("num_threads", threads)
    results: list[Any] = [None] * len(sections)

    def body(ctx) -> None:
        # Dynamic distribution: threads grab the next unclaimed section.
        for s in ctx.for_range(len(sections), schedule="dynamic"):
            results[s] = sections[s]()

    parallel_region(threads, body)
    return results


class OrderedRegion:
    """Sequencer for ``ordered`` blocks inside a parallel loop.

    Iterations may be *computed* in any order by any thread, but calls
    to :meth:`commit` execute strictly in iteration order::

        region = OrderedRegion(total=n)
        def body(ctx):
            for i in ctx.for_range(n, schedule="dynamic"):
                value = expensive(i)              # parallel part
                region.commit(i, lambda: out.append(value))  # ordered part

    ``commit`` blocks until every lower iteration has committed.
    """

    def __init__(self, total: int) -> None:
        require_nonnegative_int("total", total)
        self.total = total
        self._next = 0
        self._cond = threading.Condition()

    def commit(self, iteration: int, action: Callable[[], Any], *, timeout: float = 60.0) -> Any:
        """Run ``action`` once iterations ``0..iteration`` have committed.

        Raises ``TimeoutError`` if a lower iteration never commits within
        ``timeout`` seconds — the ordered-region analogue of a barrier
        deadlock (e.g. an iteration skipped its commit)."""
        import time

        if not 0 <= iteration < self.total:
            raise ValueError(f"iteration {iteration} out of range [0, {self.total})")
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._next < iteration:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"iteration {iteration} waited {timeout}s for iteration "
                        f"{self._next} to commit — a commit was skipped"
                    )
                self._cond.wait(timeout=min(remaining, 0.1))
            if self._next > iteration:
                raise RuntimeError(f"iteration {iteration} committed twice")
            try:
                return action()
            finally:
                self._next += 1
                self._cond.notify_all()

    @property
    def committed(self) -> int:
        """Number of iterations committed so far."""
        with self._cond:
            return self._next
