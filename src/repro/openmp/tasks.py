"""The OpenMP task model: ``task``, ``taskwait``, ``taskloop``.

Irregular parallelism — recursive decompositions, work whose size is
discovered while running — is expressed with *tasks* rather than loop
worksharing. :class:`TaskGroup` provides the teaching subset:

- :meth:`TaskGroup.submit` — ``#pragma omp task``: enqueue a deferred
  unit; any team thread may execute it (including nested submissions
  from inside a task, the recursion case);
- :meth:`TaskGroup.taskwait` — block until every submitted task (and
  their descendants) has finished; returns results in submission order;
- :func:`task_parallel` — run a generator function on a team where
  thread 0 produces tasks and all threads (including 0) drain them.

Built on a shared deque with a completion counter; work stealing is
implicit because every thread pops from the same queue.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Callable

from repro.openmp.region import parallel_region
from repro.util.validation import require_positive_int

__all__ = ["TaskGroup", "task_parallel"]


class TaskGroup:
    """A pool of deferred tasks drained by helper threads.

    Create it, submit work (from anywhere, including inside running
    tasks), and ``taskwait()``. Worker threads are spawned lazily at
    first submit and shut down when the group is used as a context
    manager or :meth:`shutdown` is called.
    """

    def __init__(self, num_threads: int = 4) -> None:
        require_positive_int("num_threads", num_threads)
        self.num_threads = num_threads
        self._queue: collections.deque[tuple[int, Callable[[], Any]]] = collections.deque()
        self._results: dict[int, Any] = {}
        self._errors: list[BaseException] = []
        self._cond = threading.Condition()
        self._next_id = 0
        self._outstanding = 0
        self._shutdown = False
        self._workers: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        for i in range(self.num_threads):
            t = threading.Thread(target=self._worker, name=f"omp-task-{i}", daemon=True)
            t.start()
            self._workers.append(t)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._cond.wait(timeout=0.1)
                if self._shutdown and not self._queue:
                    return
                if not self._queue:
                    continue
                task_id, fn = self._queue.popleft()
            try:
                result = fn()
                with self._cond:
                    self._results[task_id] = result
            except BaseException as exc:  # noqa: BLE001 - surfaced at taskwait
                with self._cond:
                    self._errors.append(exc)
            finally:
                with self._cond:
                    self._outstanding -= 1
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], Any]) -> int:
        """Enqueue a task; returns its id (its index in taskwait order)."""
        with self._cond:
            if self._shutdown:
                raise RuntimeError("TaskGroup has been shut down")
            task_id = self._next_id
            self._next_id += 1
            self._outstanding += 1
            self._queue.append((task_id, fn))
            self._cond.notify()
        self._ensure_workers()
        return task_id

    def taskwait(self, timeout: float = 60.0) -> list[Any]:
        """Block until all submitted tasks finished; results in submit order.

        Raises the first task error, if any (clearing it, so the group
        stays usable).
        """
        import time

        deadline = time.monotonic() + timeout
        with self._cond:
            while self._outstanding > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"tasks still outstanding after {timeout}s")
                self._cond.wait(timeout=min(remaining, 0.1))
            if self._errors:
                error = self._errors[0]
                self._errors.clear()
                raise error
            ordered = [self._results[i] for i in sorted(self._results)]
            self._results.clear()
            self._next_id = 0
            return ordered

    def shutdown(self) -> None:
        """Stop the worker threads (after draining the queue)."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._workers:
            t.join()
        self._workers.clear()

    def __enter__(self) -> "TaskGroup":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def task_parallel(
    num_threads: int,
    producer: Callable[[Callable[[Callable[[], Any]], int]], None],
) -> list[Any]:
    """The single-producer pattern: master submits, the team drains.

    ``producer(submit)`` runs once (conceptually inside
    ``#pragma omp single``) and may call ``submit(fn)`` any number of
    times; results return in submission order.

    >>> task_parallel(3, lambda submit: [submit(lambda i=i: i * i) for i in range(4)] and None)
    [0, 1, 4, 9]
    """
    with TaskGroup(num_threads) as group:
        producer(group.submit)
        return group.taskwait()
