"""An OpenMP-flavoured shared-memory substrate built on Python threads.

The k-means assignment (paper §3) teaches a four-stage parallelization
ladder — *detect race conditions → guard with critical sections →
replace with atomics → restructure as reductions* — and the traffic
assignment (paper §5) needs ``parallel``, ``for`` and ``threadprivate``
semantics. This package provides those constructs:

- :func:`parallel_region` / :class:`TeamContext` — fork a thread team;
  inside the region each thread has ``thread_id``/``num_threads``,
  ``barrier()``, named ``critical()`` sections, ``single()`` and
  ``master()`` blocks (the ``omp parallel`` pragma).
- :func:`parallel_for` / :meth:`TeamContext.for_range` — worksharing
  loops with ``static``, ``dynamic`` and ``guided`` schedules (the
  ``omp for`` pragma with its ``schedule`` clause).
- :class:`Atomic` — a lock-protected scalar cell with ``add``/``max``/…
  (the ``omp atomic`` pragma).
- :func:`parallel_reduce` / :class:`ReductionVar` — per-thread private
  accumulators merged once at the end (the ``reduction`` clause).
- :class:`ThreadPrivate` — per-thread persistent storage (the
  ``threadprivate`` pragma), used for per-thread RNG clones.

Performance note (also in DESIGN.md): Python threads share the GIL, so
pure-Python loop bodies do not speed up — but numpy kernels release the
GIL and genuinely overlap. The benchmark suite exploits exactly that,
mirroring how the real assignments chunk work into compiled kernels.
"""

from repro.openmp.loops import chunked_for, parallel_for
from repro.openmp.reduction import ReductionVar, parallel_reduce
from repro.openmp.region import TeamContext, parallel_region
from repro.openmp.sections import OrderedRegion, parallel_sections
from repro.openmp.sync import Atomic, RacyCell
from repro.openmp.tasks import TaskGroup, task_parallel
from repro.openmp.threadprivate import ThreadPrivate

__all__ = [
    "parallel_region",
    "TeamContext",
    "parallel_for",
    "chunked_for",
    "Atomic",
    "RacyCell",
    "parallel_reduce",
    "ReductionVar",
    "ThreadPrivate",
    "parallel_sections",
    "OrderedRegion",
    "TaskGroup",
    "task_parallel",
]
