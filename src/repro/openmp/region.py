"""Thread teams: the ``omp parallel`` construct.

:func:`parallel_region` forks a team, runs ``body(ctx, *args)`` on every
member, joins, and returns per-thread results. The :class:`TeamContext`
passed to the body exposes the synchronization constructs the
assignments use; worksharing loops live in :mod:`repro.openmp.loops`
but are also reachable as :meth:`TeamContext.for_range`.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Iterator

from repro.sanitizer.runtime import get_sanitizer
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["TeamContext", "parallel_region"]


class _Team:
    """State shared by all members of one parallel region."""

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self.barrier = threading.Barrier(num_threads)
        #: Sanitizer bindings: set by parallel_region when a sanitizer is
        #: installed, None on the free hot path.
        self.sanitizer = None
        self.san_team = None
        self._locks: dict[str, threading.RLock] = {}
        self._locks_guard = threading.Lock()
        self._single_counter = itertools.count()
        self._single_claims: dict[int, int] = {}
        self._single_guard = threading.Lock()
        self._dynamic_counters: dict[int, list[int]] = {}
        self._dynamic_guard = threading.Lock()

    def lock_named(self, name: str) -> threading.RLock:
        with self._locks_guard:
            if name not in self._locks:
                self._locks[name] = threading.RLock()
            return self._locks[name]


class TeamContext:
    """Per-thread view of a parallel region (what an OpenMP pragma sees)."""

    def __init__(self, team: _Team, thread_id: int) -> None:
        self._team = team
        self.thread_id = thread_id
        self.num_threads = team.num_threads
        self._single_seq = 0
        self._dynamic_seq = 0

    # -- synchronization ------------------------------------------------
    def barrier(self) -> None:
        """Block until every team member reaches this barrier."""
        team = self._team
        if team.san_team is not None:
            team.sanitizer.barrier_wait(team.san_team, self.thread_id, team.barrier)
        else:
            team.barrier.wait()

    def critical(self, name: str = "default"):
        """Named critical section: ``with ctx.critical("updates"): …``.

        Distinct names are independent locks, exactly like OpenMP's
        ``critical(name)`` — the first rung of the k-means ladder.
        Returns a context manager: the team's RLock, or (under an active
        sanitizer) the instrumented section that feeds release/acquire
        edges to the race detector and preemption points to the
        schedule explorer.
        """
        team = self._team
        real = team.lock_named(f"critical:{name}")
        if team.san_team is not None:
            return team.sanitizer.guard(f"{team.san_team.name}:critical:{name}", real)
        return real

    def master(self) -> bool:
        """True only on thread 0 (the ``omp master`` construct)."""
        return self.thread_id == 0

    def single(self) -> bool:
        """True for exactly one thread per *call site occurrence*.

        Each thread's n-th call to ``single()`` refers to the same
        logical block; the first thread to arrive claims it. Unlike the
        OpenMP construct there is no implied barrier — add
        :meth:`barrier` calls around it if all threads must wait.
        """
        seq = self._single_seq
        self._single_seq += 1
        with self._team._single_guard:
            if seq not in self._team._single_claims:
                self._team._single_claims[seq] = self.thread_id
                return True
            return self._team._single_claims[seq] == self.thread_id

    # -- worksharing ------------------------------------------------------
    def static_bounds(self, n: int) -> tuple[int, int]:
        """This thread's contiguous block of ``range(n)`` (static schedule)."""
        return block_bounds(n, self.num_threads, self.thread_id)

    def for_range(
        self, n: int, schedule: str = "static", chunk: int | None = None
    ) -> Iterator[int]:
        """Iterate this thread's share of ``range(n)`` under a schedule.

        ``static``: contiguous blocks, one per thread (deterministic);
        ``static-cyclic``: round-robin chunks of size ``chunk`` (default 1);
        ``dynamic``: threads grab chunks of ``chunk`` (default 1) from a
        shared counter as they finish — load-balancing, nondeterministic
        assignment;
        ``guided``: like dynamic but chunk sizes decay (remaining / team,
        floored at ``chunk``).

        Every thread of the team must call ``for_range`` the same number
        of times (the calls pair up by sequence, like worksharing
        constructs in OpenMP).
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if schedule == "static":
            lo, hi = self.static_bounds(n)
            yield from range(lo, hi)
        elif schedule == "static-cyclic":
            step = chunk or 1
            for start in range(self.thread_id * step, n, self.num_threads * step):
                yield from range(start, min(start + step, n))
        elif schedule in ("dynamic", "guided"):
            yield from self._scheduled(n, schedule, chunk or 1)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")

    def _scheduled(self, n: int, schedule: str, min_chunk: int) -> Iterator[int]:
        seq = self._dynamic_seq
        self._dynamic_seq += 1
        team = self._team
        with team._dynamic_guard:
            counter = team._dynamic_counters.setdefault(seq, [0])
        while True:
            with team._dynamic_guard:
                start = counter[0]
                if start >= n:
                    break
                if schedule == "guided":
                    size = max((n - start) // self.num_threads, min_chunk)
                else:
                    size = min_chunk
                end = min(start + size, n)
                counter[0] = end
            yield from range(start, end)


def parallel_region(
    num_threads: int, body: Callable[..., Any], *args: Any, **kwargs: Any
) -> list[Any]:
    """Run ``body(ctx, *args, **kwargs)`` on a team of ``num_threads`` threads.

    Returns per-thread results in thread-id order. If any thread raises,
    the first exception (by thread id) propagates after the team joins.

    >>> parallel_region(3, lambda ctx: ctx.thread_id * 2)
    [0, 2, 4]
    """
    require_positive_int("num_threads", num_threads)
    team = _Team(num_threads)
    results: list[Any] = [None] * num_threads
    errors: list[BaseException | None] = [None] * num_threads

    sanitizer = get_sanitizer()
    san_team = sanitizer.team_begin(num_threads, kind="omp") if sanitizer is not None else None
    team.sanitizer = sanitizer if san_team is not None else None
    team.san_team = san_team

    def runner(tid: int) -> None:
        try:
            if san_team is not None:
                sanitizer.thread_begin(san_team, tid)
            results[tid] = body(TeamContext(team, tid), *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller below
            errors[tid] = exc
            team.barrier.abort()
        finally:
            if san_team is not None:
                try:
                    sanitizer.thread_end(san_team, tid)
                except BaseException as exc:  # noqa: BLE001 - deadlock found at teardown
                    if errors[tid] is None:
                        errors[tid] = exc

    threads = [
        threading.Thread(target=runner, args=(t,), name=f"omp-{t}", daemon=True)
        for t in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if san_team is not None:
        sanitizer.team_end(san_team)
    for exc in errors:
        if exc is not None and not isinstance(exc, threading.BrokenBarrierError):
            raise exc
    return results
