"""Standalone worksharing loops — ``omp parallel for`` in one call.

:func:`parallel_for` fuses region creation and loop scheduling for the
common case where the entire parallel section is a single loop, which is
how the k-means assignment's first parallel version looks before any
race-condition repair.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.openmp.region import TeamContext, parallel_region

__all__ = ["parallel_for"]


def parallel_for(
    n: int,
    num_threads: int,
    body: Callable[..., None],
    *args: Any,
    schedule: str = "static",
    chunk: int | None = None,
    pass_ctx: bool = False,
) -> None:
    """Execute ``body(i, *args)`` for every ``i in range(n)`` across a team.

    ``schedule``/``chunk`` follow :meth:`TeamContext.for_range`. With
    ``pass_ctx=True`` the body is called as ``body(ctx, i, *args)`` so it
    can use critical sections or atomics — i.e. the loop body is where
    students insert their race-condition fixes.
    """

    def worker(ctx: TeamContext) -> None:
        for i in ctx.for_range(n, schedule=schedule, chunk=chunk):
            if pass_ctx:
                body(ctx, i, *args)
            else:
                body(i, *args)

    parallel_region(num_threads, worker)


def chunked_for(
    n: int,
    num_threads: int,
    body: Callable[[int, int], None],
) -> None:
    """Execute ``body(lo, hi)`` once per thread on its static block.

    The vectorization-friendly variant: instead of calling a Python
    function per index (GIL-bound), each thread gets its whole block to
    process with one numpy kernel — the pattern the performance guides
    recommend and the benchmarks use.
    """

    def worker(ctx: TeamContext) -> None:
        lo, hi = ctx.static_bounds(n)
        body(lo, hi)

    parallel_region(num_threads, worker)


__all__.append("chunked_for")
