"""Chapel-style parallel constructs: locales, distributions, forall/coforall.

The 1-D heat equation assignment (paper §6) is written in Chapel and
teaches two contrasting styles:

1. *implicit* data parallelism — a ``forall`` loop over a
   ``Block``-distributed domain, where the language places data and
   schedules tasks;
2. *explicit* task parallelism — ``coforall`` spawning one persistent
   task per locale, with manual halo exchange and barriers.

This package reproduces those constructs in Python:

- :class:`Locale` / :func:`locales` / :func:`here` / :func:`on` — the
  machine model: a fixed set of locales, a per-task "current locale",
  and the on-statement that moves execution;
- :class:`BlockDomain` (via :meth:`BlockDist.create_domain`) — a 1-D
  index set block-distributed over locales;
- :class:`BlockArray` — an array over a block domain that counts remote
  reads/writes, making communication *visible* (the pedagogical point
  of part 2 of the assignment);
- :func:`forall` — data-parallel loop: over a plain range it splits
  across a task pool; over a block domain it runs one task per locale,
  each on its own locale;
- :func:`coforall` — one task per iteration, joining at the end;
- :func:`foreach` — order-independent loop without task creation;
- :class:`TaskBarrier` — reusable barrier for coforall task teams.
"""

from repro.chapel.arrays import BlockArray
from repro.chapel.barrier import TaskBarrier
from repro.chapel.domains import BlockDist, BlockDomain, Domain
from repro.chapel.locales import Locale, here, locales, on, set_num_locales
from repro.chapel.parallel import coforall, forall, foreach
from repro.chapel.reductions import forall_reduce

__all__ = [
    "Locale",
    "locales",
    "here",
    "on",
    "set_num_locales",
    "Domain",
    "BlockDist",
    "BlockDomain",
    "BlockArray",
    "forall",
    "coforall",
    "foreach",
    "forall_reduce",
    "TaskBarrier",
]
