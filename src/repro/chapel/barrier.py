"""A reusable task barrier (Chapel's ``Barrier`` from the Collectives module).

Part 2 of the heat assignment replaces the implicit per-step join of a
``forall`` with one long-lived task team that synchronizes at explicit
barriers between time steps. ``threading.Barrier`` already cycles
automatically; this wrapper adds the Chapel-flavoured API and turns a
broken barrier into a clear error.
"""

from __future__ import annotations

import threading

from repro.util.validation import require_positive_int

__all__ = ["TaskBarrier"]


class TaskBarrier:
    """Cyclic barrier for a fixed-size task team."""

    def __init__(self, num_tasks: int) -> None:
        require_positive_int("num_tasks", num_tasks)
        self.num_tasks = num_tasks
        self._barrier = threading.Barrier(num_tasks)

    def wait(self) -> None:
        """Block until all ``num_tasks`` tasks have arrived; then all proceed."""
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise RuntimeError(
                "barrier broken: a teammate task failed or the barrier was reset"
            ) from exc

    barrier = wait  # Chapel spells it b.barrier()

    def abort(self) -> None:
        """Break the barrier, releasing (and failing) any waiters."""
        self._barrier.abort()
