"""forall / coforall / foreach — Chapel's three loop flavours.

The distinction is the whole point of the assignment:

- ``forall`` *divides* the iteration space among a bounded task pool
  (and, for a distributed domain, runs each locale's chunk *on* that
  locale) — tasks are created and destroyed per loop;
- ``coforall`` spawns exactly *one task per iteration* and joins them —
  the tool for long-lived explicit task teams;
- ``foreach`` asserts order-independence but creates *no* tasks — a
  vectorization hint, executed serially here.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from repro.chapel.domains import BlockDomain, Domain
from repro.chapel.locales import on
from repro.util.partition import block_bounds

__all__ = ["forall", "coforall", "foreach"]


def _run_tasks(bodies: Sequence[Callable[[], Any]]) -> list[Any]:
    """Spawn one thread per body, join all, propagate the first error."""
    results: list[Any] = [None] * len(bodies)
    errors: list[BaseException | None] = [None] * len(bodies)

    def runner(i: int) -> None:
        try:
            results[i] = bodies[i]()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors[i] = exc

    threads = [threading.Thread(target=runner, args=(i,), daemon=True) for i in range(len(bodies))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None:
            raise exc
    return results


def forall(
    space: Domain | range | int,
    body: Callable[[int], None],
    *,
    num_tasks: int | None = None,
) -> None:
    """Data-parallel loop over an index space.

    Over a :class:`BlockDomain`, one task runs per target locale, on
    that locale, iterating its local chunk — Chapel's distributed
    ``forall``. Over a plain range/int, the space splits into
    ``num_tasks`` (default 4) contiguous blocks.

    Tasks are created for *every call*, which is precisely the overhead
    part 2 of the assignment eliminates; the heat benchmarks measure it.
    """
    if isinstance(space, BlockDomain):
        def locale_task(locale_index: int) -> Callable[[], None]:
            def run() -> None:
                sub = space.local_subdomain(locale_index)
                with on(space.target_locales[locale_index]):
                    for i in sub.indices():
                        body(i)
            return run

        _run_tasks([locale_task(li) for li in range(space.num_locales)])
        return

    if isinstance(space, Domain):
        indices: range = space.indices()
    elif isinstance(space, int):
        indices = range(space)
    else:
        indices = space
    n = len(indices)
    tasks = num_tasks or 4

    def chunk_task(t: int) -> Callable[[], None]:
        def run() -> None:
            lo, hi = block_bounds(n, tasks, t)
            for k in range(lo, hi):
                body(indices[k])
        return run

    _run_tasks([chunk_task(t) for t in range(min(tasks, max(n, 1)))])


def coforall(items: Iterable[Any], body: Callable[[Any], Any]) -> list[Any]:
    """One task per item; returns per-item results after joining all.

    ``coforall loc in Locales do on loc`` is spelled::

        coforall(locales(), lambda loc: ... with on(loc): ...)

    (the body receives the item; enter ``on(...)`` inside it).
    """
    items = list(items)
    return _run_tasks([(lambda x=x: body(x)) for x in items])


def foreach(items: Iterable[Any], body: Callable[[Any], None]) -> None:
    """Order-independent loop, no task creation (a vectorization hint).

    The simulator runs it serially; its role is documenting intent and
    keeping solver code structurally identical to the Chapel original.
    """
    for x in items:
        body(x)
