"""Reduce intents for forall loops — Chapel's ``with (+ reduce x)``.

A distributed ``forall`` frequently ends in a reduction (the heat
solver's energy norm, a residual check). Chapel spells it
``forall i in D with (+ reduce acc)``; here it is
:func:`forall_reduce`, which evaluates a per-index term and folds
per-locale partials in locale order — deterministic, like every other
reduction in this library.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.chapel.domains import BlockDomain, Domain
from repro.chapel.locales import on
from repro.chapel.parallel import _run_tasks

__all__ = ["forall_reduce"]


def forall_reduce(
    space: Domain | range | int,
    term: Callable[[int], Any],
    op: Callable[[Any, Any], Any],
    *,
    identity: Any = None,
    num_tasks: int | None = None,
) -> Any:
    """Fold ``term(i)`` over an index space with ``op``.

    Over a :class:`BlockDomain`, one task per locale computes its chunk's
    partial *on that locale*; partials merge in locale order. Over a
    plain range, the space splits into ``num_tasks`` blocks.

    ``identity`` seeds the fold when provided; otherwise the first
    partial starts it (so ``op`` need not have a neutral element).
    """
    if isinstance(space, BlockDomain):
        def locale_partial(locale_index: int) -> Callable[[], Any]:
            def run() -> Any:
                sub = space.local_subdomain(locale_index)
                with on(space.target_locales[locale_index]):
                    acc = None
                    for i in sub.indices():
                        value = term(i)
                        acc = value if acc is None else op(acc, value)
                    return acc
            return run

        partials = _run_tasks([locale_partial(li) for li in range(space.num_locales)])
    else:
        from repro.util.partition import block_bounds

        if isinstance(space, Domain):
            indices: range = space.indices()
        elif isinstance(space, int):
            indices = range(space)
        else:
            indices = space
        tasks = num_tasks or 4
        n = len(indices)

        def block_partial(t: int) -> Callable[[], Any]:
            def run() -> Any:
                lo, hi = block_bounds(n, tasks, t)
                acc = None
                for k in range(lo, hi):
                    value = term(indices[k])
                    acc = value if acc is None else op(acc, value)
                return acc
            return run

        partials = _run_tasks([block_partial(t) for t in range(min(tasks, max(n, 1)))])

    acc = identity
    for part in partials:
        if part is None:
            continue
        acc = part if acc is None else op(acc, part)
    if acc is None:
        if identity is None:
            raise ValueError("reduction over an empty space needs an identity")
        return identity
    return acc
