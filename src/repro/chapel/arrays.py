"""Block-distributed arrays with visible communication.

A :class:`BlockArray` is declared over a :class:`BlockDomain`. Storage
is one numpy array (the process *is* the whole machine), but every
element access compares the current ``here()`` locale with the owner of
the touched index and counts remote gets/puts on the owning locale.
That gives part 1 of the heat assignment its lesson — the innocent
``forall`` stencil quietly reads across locale boundaries — and lets
part 2 demonstrate that explicit halo copies reduce fine-grained
remote traffic to two bulk transfers per step.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chapel.domains import BlockDomain
from repro.chapel.locales import here

__all__ = ["BlockArray"]


class BlockArray:
    """A 1-D array over a block-distributed domain.

    Element access (``a[i]`` / ``a[i] = v``) uses *global* indices from
    the domain and counts remote traffic. Bulk views
    (:meth:`local_view`) expose a locale's own chunk as a numpy slice
    for vectorized, communication-free compute — the idiom both solvers
    use for their inner loops.
    """

    def __init__(self, domain: BlockDomain, dtype=float, fill: float = 0.0) -> None:
        self.domain = domain
        self._data = np.full(domain.size, fill, dtype=dtype)

    @classmethod
    def from_function(cls, domain: BlockDomain, fn: Callable[[int], float], dtype=float) -> "BlockArray":
        """Initialize ``a[i] = fn(i)`` for every domain index (no comm counted)."""
        arr = cls(domain, dtype=dtype)
        arr._data[:] = [fn(i) for i in domain.indices()]
        return arr

    # -- element access (communication-counted) -------------------------
    def _offset(self, i: int) -> int:
        if i not in self.domain:
            raise IndexError(f"index {i} outside domain [{self.domain.low}, {self.domain.high})")
        return i - self.domain.low

    def __getitem__(self, i: int) -> float:
        owner = self.domain.owner(i)
        if owner is not here():
            owner.count_get()
        return self._data[self._offset(i)]

    def __setitem__(self, i: int, value: float) -> None:
        owner = self.domain.owner(i)
        if owner is not here():
            owner.count_put()
        self._data[self._offset(i)] = value

    # -- bulk access -----------------------------------------------------
    def local_view(self, locale_index: int) -> np.ndarray:
        """This locale's chunk as a mutable numpy view (no comm counted —
        by construction it is local to the ``locale_index``-th target)."""
        sub = self.domain.local_subdomain(locale_index)
        lo = sub.low - self.domain.low
        return self._data[lo : lo + sub.size]

    def get_slice(self, low: int, high: int) -> np.ndarray:
        """Copy of global indices ``[low, high)``, counting remote elements."""
        me = here()
        for locale_index in range(self.domain.num_locales):
            sub = self.domain.local_subdomain(locale_index)
            overlap = min(high, sub.high) - max(low, sub.low)
            if overlap > 0 and self.domain.target_locales[locale_index] is not me:
                self.domain.target_locales[locale_index].count_get(overlap)
        lo = self._offset(low)
        return self._data[lo : lo + (high - low)].copy()

    def set_slice(self, low: int, values: np.ndarray) -> None:
        """Write ``values`` at global indices starting at ``low``, counting
        remote elements."""
        high = low + len(values)
        me = here()
        for locale_index in range(self.domain.num_locales):
            sub = self.domain.local_subdomain(locale_index)
            overlap = min(high, sub.high) - max(low, sub.low)
            if overlap > 0 and self.domain.target_locales[locale_index] is not me:
                self.domain.target_locales[locale_index].count_put(overlap)
        lo = self._offset(low)
        self._data[lo : lo + len(values)] = values

    # -- whole-array helpers (no comm counted; driver-side use) ----------
    def to_numpy(self) -> np.ndarray:
        """Copy of the full array (for verification / plotting)."""
        return self._data.copy()

    def fill_from(self, values: np.ndarray) -> None:
        """Overwrite the full array (driver-side initialization)."""
        if len(values) != self.domain.size:
            raise ValueError(f"expected {self.domain.size} values, got {len(values)}")
        self._data[:] = values

    def swap_with(self, other: "BlockArray") -> None:
        """Exchange storage with another array over the same domain —
        the assignment's step 4.1 ``u <=> un`` swap, O(1)."""
        if other.domain is not self.domain and (
            other.domain.low != self.domain.low or other.domain.high != self.domain.high
        ):
            raise ValueError("can only swap arrays over the same domain")
        self._data, other._data = other._data, self._data

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.domain.size

    def __repr__(self) -> str:
        return f"BlockArray(domain=[{self.domain.low},{self.domain.high}), locales={self.domain.num_locales})"
