"""The locale model: where code runs and where memory lives.

Chapel programs see a global ``Locales`` array and a ``here`` constant
naming the locale the current task runs on; an ``on``-statement moves
execution (and new allocations) to another locale. We model locales as
bookkeeping objects — all memory is physically shared in-process, but
every :class:`repro.chapel.BlockArray` access checks ``here`` against
the owning locale and counts the remote ones, so programs *pay* (in
counters) exactly where a real multi-node run would pay in latency.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Locale", "locales", "here", "on", "set_num_locales"]


@dataclass
class Locale:
    """One compute node: an id plus remote-access counters."""

    id: int
    #: Remote reads served *from* this locale's memory.
    remote_gets: int = 0
    #: Remote writes landing *in* this locale's memory.
    remote_puts: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def count_get(self, n: int = 1) -> None:
        """Record ``n`` remote reads of this locale's memory."""
        with self._lock:
            self.remote_gets += n

    def count_put(self, n: int = 1) -> None:
        """Record ``n`` remote writes into this locale's memory."""
        with self._lock:
            self.remote_puts += n

    def reset_counters(self) -> None:
        """Zero the communication counters."""
        with self._lock:
            self.remote_gets = 0
            self.remote_puts = 0


class _LocaleWorld:
    """Process-global locale set (reconfigurable for tests/benchmarks)."""

    def __init__(self) -> None:
        self._locales = [Locale(0)]
        self._here = threading.local()

    def set_num_locales(self, n: int) -> list[Locale]:
        if n < 1:
            raise ValueError(f"need at least 1 locale, got {n}")
        self._locales = [Locale(i) for i in range(n)]
        return self._locales

    @property
    def locales(self) -> list[Locale]:
        return self._locales

    @property
    def here(self) -> Locale:
        current = getattr(self._here, "value", None)
        if current is None or current.id >= len(self._locales) or self._locales[current.id] is not current:
            return self._locales[0]
        return current

    @contextlib.contextmanager
    def on(self, locale: Locale) -> Iterator[Locale]:
        previous = getattr(self._here, "value", None)
        self._here.value = locale
        try:
            yield locale
        finally:
            self._here.value = previous


_WORLD = _LocaleWorld()


def set_num_locales(n: int) -> list[Locale]:
    """Reconfigure the simulated machine to ``n`` locales.

    Returns the new ``Locales`` list. Arrays created before the call
    keep their old locale objects, so reconfigure before building
    distributed data (as a real launcher would).
    """
    return _WORLD.set_num_locales(n)


def locales() -> list[Locale]:
    """The global ``Locales`` array."""
    return _WORLD.locales


def here() -> Locale:
    """The locale the current task is executing on."""
    return _WORLD.here


def on(locale: Locale):
    """Context manager: run the body on ``locale`` (the on-statement).

    >>> set_num_locales(2)[1] is locales()[1]
    True
    >>> with on(locales()[1]):
    ...     here().id
    1
    """
    return _WORLD.on(locale)
