"""Domains: index sets, optionally distributed over locales.

Chapel separates *index sets* (domains) from *arrays* declared over
them. The assignment uses a 1-D domain ``{0..<n}`` and its ``Block``
distribution; ``expand``/``interior`` give the interior sub-domain
(everything but the boundary points) that the stencil updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chapel.locales import Locale, locales
from repro.util.partition import block_bounds, owner_of
from repro.util.validation import require_nonnegative_int

__all__ = ["Domain", "BlockDomain", "BlockDist"]


@dataclass(frozen=True)
class Domain:
    """A contiguous 1-D index set ``[low, high)``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty-inverted domain [{self.low}, {self.high})")

    @property
    def size(self) -> int:
        """Number of indices."""
        return self.high - self.low

    def indices(self) -> range:
        """The indices as a range."""
        return range(self.low, self.high)

    def interior(self, margin: int = 1) -> "Domain":
        """The domain shrunk by ``margin`` on both ends (Chapel's ``expand(-m)``).

        This is the Ω̂ ⊂ Ω of the assignment: the stencil's update set,
        excluding the Dirichlet boundary points.
        """
        require_nonnegative_int("margin", margin)
        if self.size < 2 * margin:
            raise ValueError(f"domain of size {self.size} has no interior with margin {margin}")
        return Domain(self.low + margin, self.high - margin)

    def __contains__(self, i: int) -> bool:
        return self.low <= i < self.high

    def __iter__(self):
        return iter(self.indices())


class BlockDomain(Domain):
    """A domain block-distributed over a set of locales."""

    def __init__(self, low: int, high: int, target_locales: list[Locale]) -> None:
        super().__init__(low, high)
        if not target_locales:
            raise ValueError("need at least one target locale")
        object.__setattr__(self, "target_locales", target_locales)

    @property
    def num_locales(self) -> int:
        """How many locales hold blocks of this domain."""
        return len(self.target_locales)

    def local_subdomain(self, locale_index: int) -> Domain:
        """The contiguous chunk owned by the ``locale_index``-th target locale."""
        lo, hi = block_bounds(self.size, self.num_locales, locale_index)
        return Domain(self.low + lo, self.low + hi)

    def owner_index(self, i: int) -> int:
        """Index (into target_locales) of the locale owning global index ``i``."""
        if i not in self:
            raise IndexError(f"index {i} outside domain [{self.low}, {self.high})")
        return owner_of(self.size, self.num_locales, i - self.low)

    def owner(self, i: int) -> Locale:
        """The locale owning global index ``i``."""
        return self.target_locales[self.owner_index(i)]

    def interior(self, margin: int = 1) -> "BlockDomain":
        """Interior sub-domain, still distributed over the same locales.

        Note the owner map of the interior follows the *parent* layout in
        Chapel; for simplicity ours re-blocks the smaller index set,
        which the solvers never rely on (they iterate per-locale chunks
        of the parent).
        """
        shrunk = super().interior(margin)
        return BlockDomain(shrunk.low, shrunk.high, self.target_locales)


class BlockDist:
    """Factory for block-distributed domains (Chapel's ``Block.createDomain``)."""

    @staticmethod
    def create_domain(
        n_or_range: int | range, target_locales: list[Locale] | None = None
    ) -> BlockDomain:
        """A :class:`BlockDomain` over ``{0..<n}`` (or the given range),
        distributed over ``target_locales`` (default: all locales)."""
        if isinstance(n_or_range, range):
            if n_or_range.step != 1:
                raise ValueError("only unit-stride domains are supported")
            low, high = n_or_range.start, n_or_range.stop
        else:
            require_nonnegative_int("n", n_or_range)
            low, high = 0, n_or_range
        return BlockDomain(low, high, target_locales or locales())
