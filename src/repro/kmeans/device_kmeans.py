"""CUDA/OpenCL-model K-means: grid/block decomposition, per-block reductions.

The assignment's accelerator step (paper §3): "students should use
thread-blocks and coalesced memory accesses. They then determine the
situations when atomic operations or reductions are more profitable."
The simulator keeps the GPU *structure* while executing on numpy:

- the point array is covered by a **grid** of fixed-size **blocks**;
- the *assign kernel* processes one block per launch index, touching
  points contiguously (the coalescing discipline — here, numpy slices);
- the *update kernel* does a **per-block reduction** into block-private
  partial sums (shared-memory style), followed by a single cross-block
  combine (the global atomics stand-in);

so the profitability question the assignment poses — per-update atomics
vs block-level reduction — is measurable by flipping ``update_mode``.
"""

from __future__ import annotations

import numpy as np

from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.trace.tracer import get_tracer
from repro.util.validation import require_positive_int

__all__ = ["kmeans_device"]


def kmeans_device(
    points: np.ndarray,
    k: int,
    *,
    block_size: int = 256,
    update_mode: str = "block_reduce",
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """GPU-structured K-means.

    ``update_mode``:

    - ``"block_reduce"`` — each block reduces locally, one global merge
      (the fast path on real devices for small-to-moderate k);
    - ``"global_atomic"`` — every point update hits the global
      accumulators directly (one np.add.at per point row), modeling the
      atomic-contention alternative.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    require_positive_int("k", k)
    require_positive_int("block_size", block_size)
    if update_mode not in ("block_reduce", "global_atomic"):
        raise ValueError(f"unknown update_mode {update_mode!r}")
    criteria = criteria or TerminationCriteria()

    n, d = points.shape
    if initial_centroids is not None:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, d):
            raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
    else:
        centroids = init_random_points(points, k, seed)

    num_blocks = (n + block_size - 1) // block_size
    assignments = np.full(n, -1, dtype=np.int64)
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"

    while True:
        iteration += 1
        changes = 0
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)

        for b in range(num_blocks):  # the kernel grid
            lo = b * block_size
            hi = min(lo + block_size, n)
            block = points[lo:hi]  # contiguous = coalesced

            # assign kernel
            d2 = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            new_local = np.argmin(d2, axis=1)
            changes += int(np.count_nonzero(new_local != assignments[lo:hi]))
            assignments[lo:hi] = new_local

            # update kernel
            if update_mode == "block_reduce":
                block_sums = np.zeros((k, d))
                block_counts = np.zeros(k, dtype=np.int64)
                np.add.at(block_sums, new_local, block)    # shared-memory reduce
                np.add.at(block_counts, new_local, 1)
                sums += block_sums                          # one global combine
                counts += block_counts
            else:
                for row in range(block.shape[0]):           # global atomics
                    c = new_local[row]
                    sums[c] += block[row]
                    counts[c] += 1

        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes_history.append(changes)
        shift_history.append(max_shift)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "kmeans.iteration", category="kmeans", iteration=iteration, changes=changes
            )
            tracer.metrics.histogram("kmeans.iteration_shift", model="device").observe(max_shift)
            tracer.metrics.counter("kmeans.iterations", model="device").inc()
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if stop is not None:
            reason = stop
            break

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )
