"""MPI-model K-means: distributed points, collective reductions.

The assignment's distributed-memory step (paper §3): "the data
structures should be distributed. The initial data and results can be
communicated with collective communication operations. Students who
reach the fourth step in OpenMP … find MPI easier since a distributed
reduction is needed in any case."

Phase structure per iteration:

1. root broadcasts the current centroids (``bcast``);
2. each rank assigns its own block of points (scattered once, up
   front) and accumulates local sums / counts / change count;
3. one ``allreduce`` folds the partials — in rank order, so the result
   is deterministic and equal to the OpenMP reduction variant's.
"""

from __future__ import annotations

import numpy as np

from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.mpi import SUM, Communicator, run_spmd
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["kmeans_mpi", "run_kmeans_mpi"]


def kmeans_mpi(
    comm: Communicator,
    points: np.ndarray | None,
    k: int,
    *,
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult | None:
    """SPMD K-means: call from every rank; ``points`` needed on root only.

    Returns the full :class:`KMeansResult` on rank 0, None elsewhere.
    """
    require_positive_int("k", k)
    criteria = criteria or TerminationCriteria()
    rank, size = comm.rank, comm.size

    # --- one-time distribution of the input (collective scatter) -------
    if rank == 0:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array on root")
        n, d = points.shape
        chunks = [
            points[slice(*block_bounds(n, size, r))] for r in range(size)
        ]
        if initial_centroids is not None:
            centroids = np.asarray(initial_centroids, dtype=float).copy()
            if centroids.shape != (k, d):
                raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
        else:
            centroids = init_random_points(points, k, seed)
    else:
        chunks = None
        centroids = None

    my_points = comm.scatter(chunks, root=0)
    centroids = comm.bcast(centroids, root=0)
    k_dims = centroids.shape[1]

    my_assignments = np.full(my_points.shape[0], -1, dtype=np.int64)
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"

    while True:
        iteration += 1
        # Phase 1: local assignment.
        if my_points.shape[0]:
            d2 = (
                np.einsum("ij,ij->i", my_points, my_points)[:, None]
                - 2.0 * my_points @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            new_local = np.argmin(d2, axis=1)
            local_changes = int(np.count_nonzero(new_local != my_assignments))
            my_assignments = new_local
        else:
            local_changes = 0

        # Phase 2: local partial sums, then ONE distributed reduction.
        local_sums = np.zeros((k, k_dims))
        local_counts = np.zeros(k, dtype=np.int64)
        if my_points.shape[0]:
            np.add.at(local_sums, my_assignments, my_points)
            np.add.at(local_counts, my_assignments, 1)
        sums, counts, changes = comm.allreduce(
            (local_sums, local_counts, local_changes),
            op=lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
        )

        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes_history.append(changes)
        shift_history.append(max_shift)
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if stop is not None:
            reason = stop
            break

    # --- gather results back to root (collective gather) ---------------
    gathered = comm.gather(my_assignments, root=0)
    if rank != 0:
        return None
    assignments = np.concatenate(gathered)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )


def run_kmeans_mpi(num_ranks: int, points: np.ndarray, k: int, **kwargs) -> KMeansResult:
    """Launcher: run :func:`kmeans_mpi` on ``num_ranks`` ranks, return root's result."""

    def program(comm: Communicator) -> KMeansResult | None:
        return kmeans_mpi(comm, points if comm.rank == 0 else None, k, **kwargs)

    return run_spmd(num_ranks, program)[0]
