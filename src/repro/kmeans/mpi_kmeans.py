"""MPI-model K-means: distributed points, collective reductions.

The assignment's distributed-memory step (paper §3): "the data
structures should be distributed. The initial data and results can be
communicated with collective communication operations. Students who
reach the fourth step in OpenMP … find MPI easier since a distributed
reduction is needed in any case."

Phase structure per iteration:

1. root broadcasts the current centroids (``bcast``);
2. each rank assigns its own block of points (scattered once, up
   front) and accumulates local sums / counts / change count;
3. one ``allreduce`` folds the partials — in rank order, so the result
   is deterministic and equal to the OpenMP reduction variant's.

For fault tolerance the loop can checkpoint: pass a
:class:`KMeansCheckpoint` and rank 0 records ``(iteration, centroids,
assignments, histories)`` after each completed iteration. A *restarted*
world handed the same checkpoint resumes from the last completed
iteration and — because the reduction folds in rank order — finishes
with centroids bit-identical to an uninterrupted run of the same world
size (docs/fault_tolerance.md).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.mpi import SUM, Communicator, run_spmd
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["kmeans_mpi", "run_kmeans_mpi", "KMeansCheckpoint"]


class KMeansCheckpoint:
    """Iteration checkpoint for :func:`kmeans_mpi` (in-memory stand-in for a file).

    Holds the state of the last *completed* iteration: the iteration
    number, the centroids it produced, the global assignment vector, and
    the per-iteration histories. ``save`` replaces the whole state
    atomically under a lock, so a world that dies mid-save at worst
    leaves the previous iteration's state — never a torn one (the
    write-temp-then-rename discipline of real checkpoint files).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: tuple | None = None

    @property
    def iteration(self) -> int:
        """Last completed iteration recorded (0 = nothing recorded)."""
        with self._lock:
            return 0 if self._state is None else self._state[0]

    def has_state(self) -> bool:
        """True once at least one iteration has been recorded."""
        with self._lock:
            return self._state is not None

    def save(
        self,
        iteration: int,
        centroids: np.ndarray,
        assignments: np.ndarray,
        changes_history: list[int],
        shift_history: list[float],
    ) -> None:
        """Atomically record the state after one completed iteration."""
        state = (
            iteration,
            np.array(centroids, copy=True),
            np.array(assignments, copy=True),
            list(changes_history),
            list(shift_history),
        )
        with self._lock:
            self._state = state

    def restore(self) -> tuple[int, np.ndarray, np.ndarray, list[int], list[float]]:
        """Copies of the recorded state; raises if nothing was saved."""
        with self._lock:
            if self._state is None:
                raise ValueError("checkpoint is empty — nothing to restore")
            it, cent, assign, ch, sh = self._state
            return it, cent.copy(), assign.copy(), list(ch), list(sh)


def kmeans_mpi(
    comm: Communicator,
    points: np.ndarray | None,
    k: int,
    *,
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
    checkpoint: KMeansCheckpoint | None = None,
) -> KMeansResult | None:
    """SPMD K-means: call from every rank; ``points`` needed on root only.

    Returns the full :class:`KMeansResult` on rank 0, None elsewhere.

    With a ``checkpoint``, rank 0 records every completed iteration's
    state (one extra gather per iteration), and a world started with a
    *non-empty* checkpoint resumes from it instead of initializing —
    the restart path for a run killed by a fault.
    """
    require_positive_int("k", k)
    criteria = criteria or TerminationCriteria()
    rank, size = comm.rank, comm.size
    tracer = comm.tracer

    # --- one-time distribution of the input (collective scatter) -------
    restored = checkpoint is not None and checkpoint.has_state()
    assignment_chunks = None
    start_iteration = 0
    changes_history: list[int] = []
    shift_history: list[float] = []
    if rank == 0:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array on root")
        n, d = points.shape
        chunks = [
            points[slice(*block_bounds(n, size, r))] for r in range(size)
        ]
        if restored:
            start_iteration, centroids, assignments_g, changes_history, shift_history = (
                checkpoint.restore()
            )
            if centroids.shape != (k, d):
                raise ValueError(
                    f"checkpoint centroids must be {(k, d)}, got {centroids.shape}"
                )
            assignment_chunks = [
                assignments_g[slice(*block_bounds(n, size, r))] for r in range(size)
            ]
        elif initial_centroids is not None:
            centroids = np.asarray(initial_centroids, dtype=float).copy()
            if centroids.shape != (k, d):
                raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
        else:
            centroids = init_random_points(points, k, seed)
    else:
        chunks = None
        centroids = None

    my_points = comm.scatter(chunks, root=0)
    centroids = comm.bcast(centroids, root=0)
    k_dims = centroids.shape[1]

    if restored:
        my_assignments = comm.scatter(assignment_chunks, root=0)
        start_iteration = comm.bcast(start_iteration, root=0)
    else:
        my_assignments = np.full(my_points.shape[0], -1, dtype=np.int64)
    iteration = start_iteration
    reason = "max_iterations"

    while True:
        iteration += 1
        # Phase 1: local assignment.
        if my_points.shape[0]:
            d2 = (
                np.einsum("ij,ij->i", my_points, my_points)[:, None]
                - 2.0 * my_points @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            new_local = np.argmin(d2, axis=1)
            local_changes = int(np.count_nonzero(new_local != my_assignments))
            my_assignments = new_local
        else:
            local_changes = 0

        # Phase 2: local partial sums, then ONE distributed reduction.
        local_sums = np.zeros((k, k_dims))
        local_counts = np.zeros(k, dtype=np.int64)
        if my_points.shape[0]:
            np.add.at(local_sums, my_assignments, my_points)
            np.add.at(local_counts, my_assignments, 1)
        sums, counts, changes = comm.allreduce(
            (local_sums, local_counts, local_changes),
            op=lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
        )

        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes_history.append(changes)
        shift_history.append(max_shift)
        if tracer.enabled and rank == 0:
            # Post-allreduce the values are global, so rank 0 speaks for all.
            tracer.instant(
                "kmeans.iteration", category="kmeans", iteration=iteration, changes=changes
            )
            tracer.metrics.histogram("kmeans.iteration_shift", model="mpi").observe(max_shift)
            tracer.metrics.counter("kmeans.iterations", model="mpi").inc()
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if checkpoint is not None:
            # One extra collective per iteration: the completed state
            # lands on rank 0 before anyone can die in iteration i+1.
            ckpt_assignments = comm.gather(my_assignments, root=0)
            if rank == 0:
                checkpoint.save(
                    iteration,
                    centroids,
                    np.concatenate(ckpt_assignments),
                    changes_history,
                    shift_history,
                )
        if stop is not None:
            reason = stop
            break

    # --- gather results back to root (collective gather) ---------------
    gathered = comm.gather(my_assignments, root=0)
    if rank != 0:
        return None
    assignments = np.concatenate(gathered)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )


def run_kmeans_mpi(
    num_ranks: int,
    points: np.ndarray,
    k: int,
    *,
    faults=None,
    timeout: float = 60.0,
    **kwargs,
) -> KMeansResult:
    """Launcher: run :func:`kmeans_mpi` on ``num_ranks`` ranks, return root's result.

    ``faults``/``timeout`` go to the runtime (fault-injection runs);
    remaining keyword arguments go to :func:`kmeans_mpi` — including
    ``checkpoint``, which is how a relaunch after a fault resumes.
    """

    def program(comm: Communicator) -> KMeansResult | None:
        return kmeans_mpi(comm, points if comm.rank == 0 else None, k, **kwargs)

    return run_spmd(num_ranks, program, faults=faults, timeout=timeout)[0]
