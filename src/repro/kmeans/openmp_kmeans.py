"""OpenMP-model K-means: the four-stage race-repair ladder.

The assignment's parallelization strategy (paper §3): (1) detect the
race conditions — the cluster-change counter and the per-cluster
sums/counts; (2) guard them with **critical** regions; (3) replace with
**atomic** operations; (4) restructure as **reductions**. Each rung is a
selectable ``variant`` so correctness and cost can be compared:

- ``"racy"`` — rung zero, the bug under study: an unguarded
  :class:`~repro.openmp.RacyCell` change counter and bare shared
  sums/counts updates. Kept so the race *detector* has a true positive
  — ``repro.sanitizer.explore`` flags it on every schedule and loses
  updates on adverse ones. Never use it for answers.
- ``"critical"`` — one named critical section serializes every update
  (correct, maximally contended);
- ``"atomic"`` — per-cluster atomic cells (correct, finer-grained);
- ``"reduction"`` — per-thread private sums merged once, in thread
  order (correct, contention-free, and deterministic).

``VARIANTS`` lists the *correct* rungs (what conformance tests sweep);
``ALL_VARIANTS`` adds ``"racy"`` for the sanitizer suite.

All variants share phase-1 vectorized assignment over static thread
blocks, so they produce identical assignments; centroid coordinates may
differ across variants by float-addition order only. Shared cells carry
``annotate_read``/``annotate_write`` declarations — free when no
sanitizer is installed — so every rung is certifiable by
``tests/sanitizer/test_kmeans_certification.py``.
"""

from __future__ import annotations

import numpy as np

from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.openmp import Atomic, RacyCell, parallel_region
from repro.sanitizer.runtime import annotate_read, annotate_write
from repro.trace.tracer import get_tracer
from repro.util.partition import block_bounds
from repro.util.validation import require_positive_int

__all__ = ["kmeans_openmp", "VARIANTS", "ALL_VARIANTS"]

#: The correct rungs of the ladder (safe for answers and conformance sweeps).
VARIANTS = ("critical", "atomic", "reduction")
#: Every rung including the intentionally-broken one the detector must flag.
ALL_VARIANTS = ("racy",) + VARIANTS


def kmeans_openmp(
    points: np.ndarray,
    k: int,
    *,
    num_threads: int = 4,
    variant: str = "reduction",
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """Shared-memory K-means with the chosen race-repair variant."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    require_positive_int("k", k)
    require_positive_int("num_threads", num_threads)
    if variant not in ALL_VARIANTS:
        raise ValueError(f"variant must be one of {ALL_VARIANTS}, got {variant!r}")
    criteria = criteria or TerminationCriteria()

    n, d = points.shape
    if initial_centroids is not None:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, d):
            raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
    else:
        centroids = init_random_points(points, k, seed)

    assignments = np.full(n, -1, dtype=np.int64)
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"

    while True:
        iteration += 1
        if variant == "racy":
            changes_cell = RacyCell(0, name="kmeans.changes")
        else:
            changes_cell = Atomic(0, name="kmeans.changes")
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)
        cluster_cells = (
            [Atomic(0, name=f"kmeans.cluster[{c}]") for c in range(k)]
            if variant == "atomic"
            else None
        )
        thread_sums = (
            [np.zeros((k, d)) for _ in range(num_threads)] if variant == "reduction" else None
        )
        thread_counts = (
            [np.zeros(k, dtype=np.int64) for _ in range(num_threads)]
            if variant == "reduction"
            else None
        )

        def body(ctx) -> None:
            lo, hi = block_bounds(n, ctx.num_threads, ctx.thread_id)
            block = points[lo:hi]
            if block.shape[0] == 0:
                return
            # Phase 1: vectorized assignment of this thread's block. The
            # per-point writes are disjoint; the shared *counter* is the race.
            annotate_read("kmeans.centroids", "kmeans.assign:centroids")
            d2 = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            new_local = np.argmin(d2, axis=1)
            local_changes = int(np.count_nonzero(new_local != assignments[lo:hi]))
            assignments[lo:hi] = new_local

            if variant == "critical":
                with ctx.critical("changes"):
                    changes_cell.store(changes_cell.value + local_changes)
            else:
                changes_cell.add(local_changes)  # racy / atomic / reduction

            # Phase 2: per-cluster sums/counts — the update race.
            if variant == "racy":
                # Stage 1: the bug — bare read-modify-writes on shared arrays.
                annotate_write("kmeans.sums", "kmeans.racy:sums")
                annotate_write("kmeans.counts", "kmeans.racy:counts")
                np.add.at(sums, new_local, block)
                np.add.at(counts, new_local, 1)
            elif variant == "critical":
                # Stage 2: one big critical region serializes all updates.
                with ctx.critical("centroid-update"):
                    annotate_write("kmeans.sums", "kmeans.critical:sums")
                    annotate_write("kmeans.counts", "kmeans.critical:counts")
                    np.add.at(sums, new_local, block)
                    np.add.at(counts, new_local, 1)
            elif variant == "atomic":
                # Stage 3: per-cluster cells — finer-grained exclusion.
                for c in range(k):
                    members = block[new_local == c]
                    if members.shape[0]:
                        with cluster_cells[c].guarded():
                            annotate_write(f"kmeans.sums[{c}]", "kmeans.atomic:sums")
                            sums[c] += members.sum(axis=0)
                            counts[c] += members.shape[0]
            else:
                # Stage 4: thread-private accumulators, merged after the join.
                annotate_write(f"kmeans.sums:t{ctx.thread_id}", "kmeans.reduction:sums")
                np.add.at(thread_sums[ctx.thread_id], new_local, block)
                np.add.at(thread_counts[ctx.thread_id], new_local, 1)

        parallel_region(num_threads, body)

        if variant == "reduction":
            for t in range(num_threads):  # deterministic thread-order merge
                annotate_read(f"kmeans.sums:t{t}", "kmeans.reduction:merge")
                sums += thread_sums[t]
                counts += thread_counts[t]

        annotate_write("kmeans.centroids", "kmeans.update:centroids")
        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes = changes_cell.value
        changes_history.append(changes)
        shift_history.append(max_shift)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "kmeans.iteration", category="kmeans", iteration=iteration, changes=changes
            )
            tracer.metrics.histogram("kmeans.iteration_shift", model="openmp").observe(max_shift)
            tracer.metrics.counter("kmeans.iterations", model="openmp").inc()
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if stop is not None:
            reason = stop
            break

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )
