"""Cluster-quality evaluation: elbow curves and silhouette scores.

The assignment introduces K-means "with practical applications"; the
natural student question — *how do I pick K?* — gets the two standard
answers here:

- :func:`elbow_curve` — inertia as a function of K (look for the bend);
- :func:`silhouette_score` — mean silhouette coefficient, maximized at
  the natural cluster count;
- :func:`suggest_k` — the largest relative inertia drop-off heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.kmeans.initialization import init_kmeans_plus_plus
from repro.kmeans.sequential import kmeans_sequential
from repro.kmeans.termination import TerminationCriteria
from repro.util.validation import require_positive_int

__all__ = ["elbow_curve", "silhouette_score", "suggest_k"]


def elbow_curve(
    points: np.ndarray,
    k_values: list[int],
    *,
    seed: int = 0,
    restarts: int = 5,
    criteria: TerminationCriteria | None = None,
) -> list[tuple[int, float]]:
    """(K, best-of-``restarts`` inertia) pairs, k-means++ seeded.

    Lloyd's algorithm only finds local optima, so each K runs
    ``restarts`` times from different seeds and keeps the lowest
    inertia — without this the curve is not reliably monotone and the
    elbow can vanish into an unlucky restart.
    """
    if not k_values:
        raise ValueError("k_values must be non-empty")
    require_positive_int("restarts", restarts)
    points = np.asarray(points, dtype=float)
    out = []
    for k in sorted(set(k_values)):
        require_positive_int("k", k)
        best = np.inf
        for r in range(restarts):
            init = init_kmeans_plus_plus(points, k, seed=seed + r)
            result = kmeans_sequential(
                points, k, criteria=criteria, initial_centroids=init
            )
            best = min(best, result.inertia)
        out.append((k, float(best)))
    return out


def silhouette_score(points: np.ndarray, assignments: np.ndarray) -> float:
    """Mean silhouette coefficient over all points.

    For point i with intra-cluster mean distance a(i) and smallest
    other-cluster mean distance b(i):  s(i) = (b − a) / max(a, b).
    Points in singleton clusters contribute 0 (the sklearn convention).
    O(n²) distances — fine for assignment-scale data.
    """
    points = np.asarray(points, dtype=float)
    assignments = np.asarray(assignments)
    n = points.shape[0]
    if assignments.shape != (n,):
        raise ValueError("assignments must be one per point")
    labels = np.unique(assignments)
    if len(labels) < 2:
        raise ValueError("silhouette needs at least 2 clusters")
    d2 = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * points @ points.T
        + np.einsum("ij,ij->i", points, points)[None, :]
    )
    dist = np.sqrt(np.maximum(d2, 0.0))
    scores = np.zeros(n)
    members = {lab: np.flatnonzero(assignments == lab) for lab in labels}
    for i in range(n):
        own = members[assignments[i]]
        if len(own) <= 1:
            continue  # singleton: s(i) = 0
        a = dist[i, own].sum() / (len(own) - 1)  # exclude self (distance 0)
        b = min(
            dist[i, members[lab]].mean() for lab in labels if lab != assignments[i]
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def suggest_k(points: np.ndarray, k_max: int = 10, *, seed: int = 0) -> int:
    """The K after which the inertia improvement collapses.

    Scores each K in ``2..k_max`` by the ratio of successive inertia
    drops (the 'elbow strength'); returns the K with the sharpest bend.
    """
    require_positive_int("k_max", k_max)
    if k_max < 3:
        return min(k_max, 2)
    curve = elbow_curve(points, list(range(1, k_max + 1)), seed=seed)
    inertias = [inertia for _, inertia in curve]
    best_k, best_strength = 2, -np.inf
    for idx in range(1, len(inertias) - 1):
        drop_before = inertias[idx - 1] - inertias[idx]
        drop_after = max(inertias[idx] - inertias[idx + 1], 1e-12)
        strength = drop_before / drop_after
        if strength > best_strength:
            best_strength = strength
            best_k = curve[idx][0]
    return best_k
