"""Stopping rules for the clustering loop.

The Valladolid starter program "ends if thresholds on the number of
iterations, number of cluster changes, or centroid displacement are
reached" (paper §3). All three are represented so every parallel variant
stops at exactly the same iteration as the sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TerminationCriteria"]


@dataclass(frozen=True)
class TerminationCriteria:
    """The three thresholds; any one being hit stops the loop.

    - ``max_iterations``: hard cap on clustering iterations;
    - ``min_changes``: stop when the number of points that switched
      cluster this iteration is *at or below* this;
    - ``max_centroid_shift``: stop when the largest centroid movement
      (Euclidean) is at or below this.
    """

    max_iterations: int = 100
    min_changes: int = 0
    max_centroid_shift: float = 1e-8

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.min_changes < 0:
            raise ValueError(f"min_changes must be >= 0, got {self.min_changes}")
        if self.max_centroid_shift < 0:
            raise ValueError(
                f"max_centroid_shift must be >= 0, got {self.max_centroid_shift}"
            )

    def reason_to_stop(self, iteration: int, changes: int, max_shift: float) -> str | None:
        """The stop reason after an iteration, or None to keep going."""
        if changes <= self.min_changes:
            return "changes"
        if max_shift <= self.max_centroid_shift:
            return "centroid_shift"
        if iteration >= self.max_iterations:
            return "max_iterations"
        return None
