"""The sequential K-means starter program.

Mirrors the structure of the Valladolid handout (paper §3): static
arrays, a two-phase main loop —

  phase 1: re-assign each point to its closest centroid, counting
           cluster changes (the write/update race once parallelized);
  phase 2: recompute each centroid as the mean of its points, i.e.
           per-cluster coordinate sums and member counts (the second
           race, plus the load-balance discussion);

— and a three-threshold termination check. Helper functions
:func:`assign_points` and :func:`update_centroids` are shared by the
parallel variants so every model computes the same mathematics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kmeans.initialization import init_random_points
from repro.kmeans.termination import TerminationCriteria
from repro.util.validation import require_positive_int

__all__ = ["KMeansResult", "assign_points", "update_centroids", "kmeans_sequential"]


@dataclass
class KMeansResult:
    """Everything the assignment asks students to report."""

    centroids: np.ndarray
    assignments: np.ndarray
    iterations: int
    stop_reason: str
    inertia: float
    changes_history: list[int] = field(default_factory=list)
    shift_history: list[float] = field(default_factory=list)


def assign_points(
    points: np.ndarray, centroids: np.ndarray, assignments: np.ndarray
) -> tuple[np.ndarray, int]:
    """Phase 1 on a (sub)array: new assignments and the change count.

    Vectorized distance argmin; ties go to the lowest cluster index
    (numpy argmin convention), matching a naive ``<`` scan in C.
    """
    d2 = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * points @ centroids.T
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    new_assignments = np.argmin(d2, axis=1)
    changes = int(np.count_nonzero(new_assignments != assignments))
    return new_assignments, changes


def update_centroids(
    points: np.ndarray,
    assignments: np.ndarray,
    k: int,
    old_centroids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase 2: per-cluster sums/counts and the resulting means.

    Returns (new_centroids, sums, counts). Empty clusters keep their old
    centroid (the conventional fix; the starter code's behaviour).
    """
    d = points.shape[1]
    sums = np.zeros((k, d))
    counts = np.zeros(k, dtype=np.int64)
    np.add.at(sums, assignments, points)
    np.add.at(counts, assignments, 1)
    new_centroids = old_centroids.copy()
    nonempty = counts > 0
    new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    return new_centroids, sums, counts


def compute_inertia(points: np.ndarray, centroids: np.ndarray, assignments: np.ndarray) -> float:
    """Sum of squared distances of points to their assigned centroid."""
    diffs = points - centroids[assignments]
    return float(np.einsum("ij,ij->", diffs, diffs))


def kmeans_sequential(
    points: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """The reference clustering loop.

    ``initial_centroids`` overrides the random seeding — the hook all
    parallel variants use to start from identical state.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    require_positive_int("k", k)
    criteria = criteria or TerminationCriteria()
    if initial_centroids is not None:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, points.shape[1]):
            raise ValueError(
                f"initial_centroids must be {(k, points.shape[1])}, got {centroids.shape}"
            )
    else:
        centroids = init_random_points(points, k, seed)

    assignments = np.full(points.shape[0], -1, dtype=np.int64)
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"
    while True:
        iteration += 1
        assignments, changes = assign_points(points, centroids, assignments)
        new_centroids, _, _ = update_centroids(points, assignments, k, centroids)
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes_history.append(changes)
        shift_history.append(max_shift)
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if stop is not None:
            reason = stop
            break

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )
