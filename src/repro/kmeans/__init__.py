"""K-means clustering in four programming models — Peachy assignment §3.

One problem, solved the way the Valladolid assignment series teaches it:
start from an intentionally understandable sequential program, then
parallelize it under OpenMP, MPI and CUDA/OpenCL, confronting the same
two race conditions (the per-point cluster-change counter and the
per-cluster coordinate sums) in each model.

- :mod:`repro.kmeans.sequential` — the starter code: static data
  structures, two-phase loop, three termination thresholds;
- :mod:`repro.kmeans.openmp_kmeans` — the four-stage strategy: races
  guarded by ``critical``, upgraded to ``atomic``, then restructured as
  ``reduction`` (each stage is a selectable variant so the ladder is
  benchmarkable);
- :mod:`repro.kmeans.mpi_kmeans` — distributed points, broadcast
  centroids, one distributed reduction per iteration;
- :mod:`repro.kmeans.device_kmeans` — CUDA-style: grid/block
  decomposition with per-block partial reductions, vectorized per block;
- :mod:`repro.kmeans.parallel_kmeans` — the executor-backend variant:
  phase 1 farmed over serial/thread/process workers
  (:mod:`repro.core.executor`), bit-identical across backends;
- :mod:`repro.kmeans.initialization` / :mod:`repro.kmeans.termination`
  — deterministic centroid seeding and the stopping rules.
"""

from repro.kmeans.initialization import init_random_points, init_kmeans_plus_plus
from repro.kmeans.termination import TerminationCriteria
from repro.kmeans.sequential import KMeansResult, kmeans_sequential, assign_points, update_centroids
from repro.kmeans.openmp_kmeans import kmeans_openmp
from repro.kmeans.mpi_kmeans import kmeans_mpi, run_kmeans_mpi
from repro.kmeans.device_kmeans import kmeans_device
from repro.kmeans.parallel_kmeans import kmeans_parallel
from repro.kmeans.evaluation import elbow_curve, silhouette_score, suggest_k

__all__ = [
    "KMeansResult",
    "TerminationCriteria",
    "kmeans_sequential",
    "assign_points",
    "update_centroids",
    "kmeans_openmp",
    "kmeans_parallel",
    "kmeans_mpi",
    "run_kmeans_mpi",
    "kmeans_device",
    "init_random_points",
    "init_kmeans_plus_plus",
    "elbow_curve",
    "silhouette_score",
    "suggest_k",
]
