"""Centroid initialization.

The starter code chooses initial centroid positions "randomly"
(paper §3) — implemented deterministically here from a seed via the
counter-based generator, so every programming-model variant starts from
the *identical* centroids and their results can be compared exactly.
k-means++ is included as the quality-minded extension advanced students
reach for.
"""

from __future__ import annotations

import numpy as np

from repro.rng.counter import CounterRNG
from repro.util.validation import require_positive_int

__all__ = ["init_random_points", "init_kmeans_plus_plus"]


def init_random_points(points: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """K distinct data points chosen uniformly (deterministic in ``seed``).

    Sampling without replacement by rejection over the counter RNG —
    O(k) expected draws, independent of any global random state.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    require_positive_int("k", k)
    if k > n:
        raise ValueError(f"cannot pick k={k} centroids from {n} points")
    rng = CounterRNG(seed=seed, stream=0x6B6D)  # 'km'
    chosen: list[int] = []
    taken = set()
    draw = 0
    while len(chosen) < k:
        idx = int(rng.uniform(draw) * n)
        draw += 1
        idx = min(idx, n - 1)
        if idx not in taken:
            taken.add(idx)
            chosen.append(idx)
    return points[chosen].copy()


def init_kmeans_plus_plus(points: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """k-means++ seeding: next centroid drawn ∝ squared distance to nearest.

    Better-spread starting centroids that typically converge in fewer
    iterations — a natural "further optimization" for the assignment.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    require_positive_int("k", k)
    if k > n:
        raise ValueError(f"cannot pick k={k} centroids from {n} points")
    rng = CounterRNG(seed=seed, stream=0x6B70)  # 'kp'
    first = min(int(rng.uniform(0) * n), n - 1)
    centroids = [points[first]]
    d2 = np.einsum("ij,ij->i", points - centroids[0], points - centroids[0])
    for step in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick any.
            centroids.append(points[min(int(rng.uniform(step) * n), n - 1)])
            continue
        target = rng.uniform(step) * total
        idx = int(np.searchsorted(np.cumsum(d2), target))
        idx = min(idx, n - 1)
        centroids.append(points[idx])
        new_d2 = np.einsum("ij,ij->i", points - points[idx], points - points[idx])
        d2 = np.minimum(d2, new_d2)
    return np.array(centroids)
