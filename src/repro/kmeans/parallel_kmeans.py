"""Executor-backend K-means: the assignment step over serial/thread/process.

The PKMeans lineage of the assignment (and the paper's §3 speedup
curves) hinges on the embarrassingly-parallel structure of phase 1:
each point's nearest centroid is independent, so the point array splits
into static blocks farmed over :mod:`repro.core.executor` workers. Each
task returns its block's assignments plus *private* per-cluster
sums/counts, and the driver merges partials in block order — the same
deterministic reduction as ``kmeans_openmp(variant="reduction")``, so
results are bit-identical across the ``serial``/``thread``/``process``
backends (asserted in ``tests/core/test_executor_determinism.py``).

Two ``kernel`` choices select what each task actually computes:

- ``"numpy"`` — the vectorized einsum/argmin math shared with the other
  models. numpy releases the GIL inside these kernels, so *threads*
  already scale here and the process backend mostly pays IPC.
- ``"python"`` — a pure-Python distance loop, the GIL-bound stand-in
  for the C starter code's per-point arithmetic. Threads serialize on
  the GIL; only the process backend shows real speedup — which is
  exactly what ``benchmarks/test_executor_backends.py`` measures.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import BACKENDS, get_executor
from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.trace.tracer import get_tracer
from repro.util.partition import block_partition
from repro.util.validation import require_positive_int

__all__ = ["kmeans_parallel", "KERNELS"]

KERNELS = ("numpy", "python")


def _assign_block_numpy(
    block: np.ndarray, centroids: np.ndarray, old: np.ndarray
) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """One task: vectorized assignment + private sums/counts for a block."""
    k, d = centroids.shape
    d2 = (
        np.einsum("ij,ij->i", block, block)[:, None]
        - 2.0 * block @ centroids.T
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    new_local = np.argmin(d2, axis=1)
    changes = int(np.count_nonzero(new_local != old))
    sums = np.zeros((k, d))
    counts = np.zeros(k, dtype=np.int64)
    np.add.at(sums, new_local, block)
    np.add.at(counts, new_local, 1)
    return new_local, changes, sums, counts


def _assign_block_python(
    block: np.ndarray, centroids: np.ndarray, old: np.ndarray
) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """The GIL-bound task: pure-Python distance scan per point.

    Ties go to the lowest cluster index (a strict ``<`` scan), matching
    numpy's argmin convention, and partials accumulate in point order —
    deterministic for any fixed blocking.
    """
    k = len(centroids)
    d = len(centroids[0]) if k else 0
    cent = [[float(x) for x in c] for c in centroids]
    sums = [[0.0] * d for _ in range(k)]
    counts = [0] * k
    new_local = []
    changes = 0
    for row_index, row in enumerate(block.tolist()):
        best, best_d2 = 0, float("inf")
        for c in range(k):
            cc = cent[c]
            dist = 0.0
            for j in range(d):
                diff = row[j] - cc[j]
                dist += diff * diff
            if dist < best_d2:
                best, best_d2 = c, dist
        new_local.append(best)
        if best != old[row_index]:
            changes += 1
        target = sums[best]
        for j in range(d):
            target[j] += row[j]
        counts[best] += 1
    return (
        np.asarray(new_local, dtype=np.int64),
        changes,
        np.asarray(sums),
        np.asarray(counts, dtype=np.int64),
    )


_KERNEL_FNS = {"numpy": _assign_block_numpy, "python": _assign_block_python}


def kmeans_parallel(
    points: np.ndarray,
    k: int,
    *,
    num_workers: int = 4,
    backend: str = "thread",
    kernel: str = "numpy",
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """K-means with the assignment step farmed over an executor backend.

    ``num_workers`` fixes the static blocking (and thus the arithmetic)
    independently of ``backend``, so any two backends at the same worker
    count return bit-identical centroids, assignments, and histories.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    require_positive_int("k", k)
    require_positive_int("num_workers", num_workers)
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    criteria = criteria or TerminationCriteria()
    kernel_fn = _KERNEL_FNS[kernel]

    n, d = points.shape
    if initial_centroids is not None:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, d):
            raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
    else:
        centroids = init_random_points(points, k, seed)

    blocks = [r for r in block_partition(n, num_workers) if r.stop > r.start]
    assignments = np.full(n, -1, dtype=np.int64)
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"
    executor = get_executor(backend, num_workers)
    tracer = get_tracer()

    while True:
        iteration += 1
        current = centroids  # pin for the closure: one snapshot per iteration

        def assign_block(_i: int, r: range) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
            return kernel_fn(points[r.start : r.stop], current, assignments[r.start : r.stop])

        partials = executor.map(assign_block, blocks)

        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)
        changes = 0
        for r, (new_local, block_changes, block_sums, block_counts) in zip(blocks, partials):
            assignments[r.start : r.stop] = new_local
            changes += block_changes
            sums += block_sums  # block-order merge: deterministic reduction
            counts += block_counts

        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        changes_history.append(changes)
        shift_history.append(max_shift)
        if tracer.enabled:
            tracer.instant(
                "kmeans.iteration", category="kmeans", iteration=iteration,
                changes=changes, backend=backend,
            )
            tracer.metrics.histogram("kmeans.iteration_shift", model="executor").observe(max_shift)
            tracer.metrics.counter("kmeans.iterations", model="executor").inc()
        stop = criteria.reason_to_stop(iteration, changes, max_shift)
        if stop is not None:
            reason = stop
            break

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )
