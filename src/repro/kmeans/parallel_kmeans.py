"""Executor-backend K-means: the assignment step over serial/thread/process.

The PKMeans lineage of the assignment (and the paper's §3 speedup
curves) hinges on the embarrassingly-parallel structure of phase 1:
each point's nearest centroid is independent, so the point array splits
into static blocks farmed over :mod:`repro.core.executor` workers. Each
task returns *private* per-cluster sums/counts, and the driver merges
partials in block order — the same deterministic reduction as
``kmeans_openmp(variant="reduction")``, so results are bit-identical
across the ``serial``/``thread``/``process`` backends (asserted in
``tests/core/test_executor_determinism.py``).

The data plane is communication-avoiding (the arXiv 1608.06347 shape):
the point array is *published* once per call through
:meth:`Executor.publish` — a shared-memory segment on the process
backend, the array itself elsewhere — and the assignment vector is a
*writable* published segment whose disjoint blocks each task writes in
place. What crosses the process boundary per task per iteration is a
``(start, stop)`` pair out and ``(changes, sums, counts)`` back —
``O(k·d)`` bytes however many points there are.

Two ``kernel`` choices select what each task actually computes:

- ``"numpy"`` — the vectorized einsum/argmin math shared with the other
  models. numpy releases the GIL inside these kernels, so *threads*
  already scale here; zero-copy sharing is what lets the process
  backend match them instead of drowning in pickled partitions.
- ``"python"`` — a pure-Python distance loop, the GIL-bound stand-in
  for the C starter code's per-point arithmetic. Threads serialize on
  the GIL; only the process backend shows real speedup — which is
  exactly what ``benchmarks/test_executor_backends.py`` measures.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core.executor import BACKENDS, DataRef, Executor, get_executor
from repro.kmeans.initialization import init_random_points
from repro.kmeans.sequential import KMeansResult, compute_inertia
from repro.kmeans.termination import TerminationCriteria
from repro.trace.tracer import get_tracer
from repro.util.partition import block_partition
from repro.util.validation import require_positive_int

__all__ = ["kmeans_parallel", "KERNELS"]

KERNELS = ("numpy", "python")


def _assign_block_numpy(
    block: np.ndarray, centroids: np.ndarray, old: np.ndarray
) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """One task: vectorized assignment + private sums/counts for a block."""
    k, d = centroids.shape
    d2 = (
        np.einsum("ij,ij->i", block, block)[:, None]
        - 2.0 * block @ centroids.T
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    new_local = np.argmin(d2, axis=1)
    changes = int(np.count_nonzero(new_local != old))
    sums = np.zeros((k, d))
    counts = np.zeros(k, dtype=np.int64)
    np.add.at(sums, new_local, block)
    np.add.at(counts, new_local, 1)
    return new_local, changes, sums, counts


def _assign_block_python(
    block: np.ndarray, centroids: np.ndarray, old: np.ndarray
) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """The GIL-bound task: pure-Python distance scan per point.

    Ties go to the lowest cluster index (a strict ``<`` scan), matching
    numpy's argmin convention, and partials accumulate in point order —
    deterministic for any fixed blocking.
    """
    k = len(centroids)
    d = len(centroids[0]) if k else 0
    cent = [[float(x) for x in c] for c in centroids]
    sums = [[0.0] * d for _ in range(k)]
    counts = [0] * k
    new_local = []
    changes = 0
    for row_index, row in enumerate(block.tolist()):
        best, best_d2 = 0, float("inf")
        for c in range(k):
            cc = cent[c]
            dist = 0.0
            for j in range(d):
                diff = row[j] - cc[j]
                dist += diff * diff
            if dist < best_d2:
                best, best_d2 = c, dist
        new_local.append(best)
        if best != old[row_index]:
            changes += 1
        target = sums[best]
        for j in range(d):
            target[j] += row[j]
        counts[best] += 1
    return (
        np.asarray(new_local, dtype=np.int64),
        changes,
        np.asarray(sums),
        np.asarray(counts, dtype=np.int64),
    )


_KERNEL_FNS = {"numpy": _assign_block_numpy, "python": _assign_block_python}


def _assign_task(
    points_ref: DataRef,
    assign_ref: DataRef,
    kernel: str,
    centroids: np.ndarray,
    _index: int,
    block: tuple[int, int],
) -> tuple[int, np.ndarray, np.ndarray]:
    """One pooled assignment task: read shared points, write shared labels.

    Module-level (bound with :func:`functools.partial`) so the payload
    pickles and the process backend keeps its persistent pool; only the
    centroid snapshot travels with the job, only ``(changes, sums,
    counts)`` travel back. The block writes are disjoint by
    construction, which is the writable-ref contract.
    """
    lo, hi = block
    points = points_ref.array()
    assignments = assign_ref.array()
    old = np.array(assignments[lo:hi])  # snapshot before the in-place write
    new_local, changes, sums, counts = _KERNEL_FNS[kernel](points[lo:hi], centroids, old)
    assignments[lo:hi] = new_local
    return changes, sums, counts


def kmeans_parallel(
    points: np.ndarray,
    k: int,
    *,
    num_workers: int = 4,
    backend: "str | Executor" = "thread",
    kernel: str = "numpy",
    seed: int = 0,
    criteria: TerminationCriteria | None = None,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """K-means with the assignment step farmed over an executor backend.

    ``num_workers`` fixes the static blocking (and thus the arithmetic)
    independently of ``backend``, so any two backends at the same worker
    count return bit-identical centroids, assignments, and histories.
    ``backend`` also accepts a live :class:`Executor` — pass a warm
    :class:`ProcessExecutor` to amortize its pool across calls (the
    executor is then the caller's to close).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    require_positive_int("k", k)
    require_positive_int("num_workers", num_workers)
    if not isinstance(backend, Executor) and backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    criteria = criteria or TerminationCriteria()

    n, d = points.shape
    if initial_centroids is not None:
        centroids = np.asarray(initial_centroids, dtype=float).copy()
        if centroids.shape != (k, d):
            raise ValueError(f"initial_centroids must be {(k, d)}, got {centroids.shape}")
    else:
        centroids = init_random_points(points, k, seed)

    blocks = [
        (r.start, r.stop) for r in block_partition(n, num_workers) if r.stop > r.start
    ]
    changes_history: list[int] = []
    shift_history: list[float] = []
    iteration = 0
    reason = "max_iterations"
    owns_executor = not isinstance(backend, Executor)
    executor = get_executor(backend, num_workers)
    backend_name = executor.name
    tracer = get_tracer()

    points_ref = assign_ref = None
    try:
        points_ref = executor.publish(points)
        assign_ref = executor.publish(np.full(n, -1, dtype=np.int64), writable=True)
        assignments = assign_ref.array()  # the owner's live view

        while True:
            iteration += 1
            partials = executor.map(
                functools.partial(_assign_task, points_ref, assign_ref, kernel, centroids),
                blocks,
            )

            sums = np.zeros((k, d))
            counts = np.zeros(k, dtype=np.int64)
            changes = 0
            for block_changes, block_sums, block_counts in partials:
                changes += block_changes
                sums += block_sums  # block-order merge: deterministic reduction
                counts += block_counts

            new_centroids = centroids.copy()
            nonempty = counts > 0
            new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
            max_shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
            centroids = new_centroids
            changes_history.append(changes)
            shift_history.append(max_shift)
            if tracer.enabled:
                tracer.instant(
                    "kmeans.iteration", category="kmeans", iteration=iteration,
                    changes=changes, backend=backend_name,
                )
                tracer.metrics.histogram("kmeans.iteration_shift", model="executor").observe(max_shift)
                tracer.metrics.counter("kmeans.iterations", model="executor").inc()
            stop = criteria.reason_to_stop(iteration, changes, max_shift)
            if stop is not None:
                reason = stop
                break

        final_assignments = np.array(assignments)  # outlive the segment
    finally:
        if assign_ref is not None:
            executor.unpublish(assign_ref)
        if points_ref is not None:
            executor.unpublish(points_ref)
        if owns_executor:
            executor.close()

    return KMeansResult(
        centroids=centroids,
        assignments=final_assignments,
        iterations=iteration,
        stop_reason=reason,
        inertia=compute_inertia(points, centroids, assignments=final_assignments),
        changes_history=changes_history,
        shift_history=shift_history,
    )
