"""Deterministic key hashing for the shuffle phase.

Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
which would make key→rank placement — and hence message sizes, pair
orders, and any tie-broken result — vary run to run. MapReduce is "a
case of load balancing through hashing" (paper §2), so the hash must be
both well-spread and stable. We canonically encode the key and digest it
with BLAKE2b.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

__all__ = ["stable_hash", "partition_for"]


def _encode(key: Any, out: list[bytes]) -> None:
    """Append a canonical, type-tagged encoding of ``key`` to ``out``."""
    if isinstance(key, bool):  # must precede int check
        out.append(b"b1" if key else b"b0")
    elif isinstance(key, int):
        out.append(b"i" + str(key).encode())
    elif isinstance(key, float):
        out.append(b"f" + key.hex().encode())
    elif isinstance(key, str):
        out.append(b"s" + key.encode("utf-8"))
    elif isinstance(key, bytes):
        out.append(b"y" + key)
    elif key is None:
        out.append(b"n")
    elif isinstance(key, tuple):
        out.append(b"t(" + str(len(key)).encode())
        for item in key:
            _encode(item, out)
        out.append(b")")
    else:
        # Last resort: pickle with a fixed protocol. Deterministic for
        # the simple frozen types used as MapReduce keys in practice.
        out.append(b"p" + pickle.dumps(key, protocol=4))


def stable_hash(key: Any) -> int:
    """A 64-bit hash of ``key`` that is identical across processes and runs."""
    parts: list[bytes] = []
    _encode(key, parts)
    digest = hashlib.blake2b(b"\x00".join(parts), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def partition_for(key: Any, num_ranks: int) -> int:
    """The rank that owns ``key`` under the default hash partitioning."""
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    return stable_hash(key) % num_ranks
