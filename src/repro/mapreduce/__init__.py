"""A MapReduce engine over MPI, modeled on the MapReduce-MPI library.

The kNN assignment (paper §2) is taught with Plimpton & Devine's
MapReduce-MPI: a C++ library where every process owns a ``MapReduce``
object holding distributed key/value data, and the program alternates

    map → (aggregate / collate) → reduce → gather

phases, with the shuffle implemented as message passing over MPI. This
package reproduces that architecture on :mod:`repro.mpi`:

- :class:`KeyValue` — a rank-local store of (key, value) pairs.
- :class:`KeyMultiValue` — the post-collate store: key → list of values.
- :class:`MapReduce` — the phase driver: ``map_tasks``/``map_items``,
  ``aggregate`` (hash shuffle), ``convert``, ``collate``, ``reduce``,
  ``local_combine`` (the per-rank pre-reduction the paper highlights as
  the communication-cost optimization), ``gather``, ``sort_by_key``.

Hashing is deterministic (independent of ``PYTHONHASHSEED``) so the
key → rank placement, and therefore the whole computation, is exactly
reproducible — see :func:`repro.mapreduce.hashing.stable_hash`.
"""

from repro.mapreduce.engine import MapReduce
from repro.mapreduce.hashing import stable_hash
from repro.mapreduce.keymultivalue import KeyMultiValue
from repro.mapreduce.keyvalue import KeyValue

__all__ = ["MapReduce", "KeyValue", "KeyMultiValue", "stable_hash"]
