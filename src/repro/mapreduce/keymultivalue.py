"""Grouped storage — MR-MPI's ``KeyMultiValue`` object.

Produced by ``convert``/``collate``: each unique key maps to the list of
all values that arrived with it, in arrival order. Reduce callbacks
iterate it and emit new pairs into a fresh :class:`KeyValue`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["KeyMultiValue"]


class KeyMultiValue:
    """Ordered mapping key → list of values (insertion order of first sight)."""

    __slots__ = ("_groups",)

    def __init__(self) -> None:
        self._groups: dict[Any, list[Any]] = {}

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Any, Any]]) -> "KeyMultiValue":
        """Group a pair stream by key."""
        kmv = cls()
        for key, value in pairs:
            kmv.add(key, value)
        return kmv

    def add(self, key: Any, value: Any) -> None:
        """Append ``value`` to ``key``'s group (creating the group if new)."""
        self._groups.setdefault(key, []).append(value)

    def values_for(self, key: Any) -> list[Any]:
        """The value list of ``key`` (KeyError if absent)."""
        return self._groups[key]

    def keys(self) -> list[Any]:
        """Unique keys in first-seen order."""
        return list(self._groups)

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        """(key, values) groups in first-seen order."""
        return iter(self._groups.items())

    def __contains__(self, key: Any) -> bool:
        return key in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        return f"KeyMultiValue({len(self._groups)} keys)"
