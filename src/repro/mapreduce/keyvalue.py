"""Rank-local key/value storage — MR-MPI's ``KeyValue`` object.

A thin, ordered container: map functions ``add`` pairs into it, the
shuffle redistributes whole pair lists, and ``convert`` groups it into a
:class:`repro.mapreduce.KeyMultiValue`. Order of insertion is preserved,
which (together with deterministic hashing and rank-ordered exchanges)
makes the entire MapReduce pipeline reproducible.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["KeyValue"]


class KeyValue:
    """An append-only ordered collection of (key, value) pairs."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[tuple[Any, Any]] | None = None) -> None:
        self._pairs: list[tuple[Any, Any]] = list(pairs) if pairs is not None else []

    def add(self, key: Any, value: Any) -> None:
        """Append one pair (what map and reduce callbacks call)."""
        self._pairs.append((key, value))

    def extend(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Append many pairs."""
        self._pairs.extend(pairs)

    def pairs(self) -> list[tuple[Any, Any]]:
        """The pair list itself (callers must not mutate)."""
        return self._pairs

    def clear(self) -> None:
        """Drop all pairs."""
        self._pairs.clear()

    def keys(self) -> list[Any]:
        """Keys in insertion order."""
        return [k for k, _ in self._pairs]

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(self._pairs)

    def __repr__(self) -> str:
        return f"KeyValue({len(self._pairs)} pairs)"
