"""The MapReduce phase driver, MR-MPI style.

Usage mirrors the C++ library the kNN assignment is built on: every
rank of an SPMD program constructs a :class:`MapReduce` over its
communicator and the ranks move through the phases together::

    def program(comm):
        mr = MapReduce(comm)
        mr.map_tasks(num_files, read_and_emit)     # parallel map / IO
        mr.collate()                               # shuffle + group
        mr.reduce(pick_nearest)                    # per-key reduction
        return mr.gather()                         # results at root

All phase methods are collective (every rank must call them in the same
order). Pair counts returned by ``map``/``reduce`` are global sums, like
MR-MPI's return values.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.executor import BACKENDS, Executor, get_executor
from repro.mapreduce.hashing import partition_for
from repro.mapreduce.keymultivalue import KeyMultiValue
from repro.mapreduce.keyvalue import KeyValue
from repro.mpi import SUM, Communicator
from repro.util.partition import block_bounds

__all__ = ["MapReduce"]

#: Signature of a map callback: (task_id, kv_out) -> None.
MapFn = Callable[[int, KeyValue], None]
#: Signature of an item-map callback: (item, kv_out) -> None.
ItemMapFn = Callable[[Any, KeyValue], None]
#: Signature of a reduce callback: (key, values, kv_out) -> None.
ReduceFn = Callable[[Any, list[Any], KeyValue], None]

# App-level tags for the speculative-map protocol (user tags are >= 0).
_TAG_SPECULATIVE_SYNC = 7101
_TAG_SPECULATIVE_PLAN = 7102


class MapReduce:
    """Distributed key/value dataset plus the operations that transform it."""

    def __init__(
        self,
        comm: Communicator,
        *,
        backend: "str | Executor" = "serial",
        num_workers: int = 4,
    ) -> None:
        if not isinstance(backend, Executor) and backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.comm = comm
        #: Executor backend for this rank's *local* map/reduce loops.
        #: ``"serial"`` (the default) is the classic in-line loop;
        #: ``"thread"``/``"process"`` fan the rank's tasks over
        #: :mod:`repro.core.executor` workers — pair order and therefore
        #: all results stay bit-identical (tasks emit into private
        #: KeyValues, merged in task order). A live :class:`Executor`
        #: may be passed instead of a name (e.g. a warm
        #: ``ProcessExecutor`` shared across engines); it is then the
        #: caller's to close.
        if isinstance(backend, Executor):
            self.backend = backend.name
            self._executor: Executor | None = backend
            self._owns_executor = False
        else:
            self.backend = backend
            self._executor = None
            self._owns_executor = True
        self.num_workers = num_workers
        self.kv = KeyValue()
        self.kmv: KeyMultiValue | None = None
        #: Number of pairs this rank shipped to other ranks in the last
        #: aggregate() — the communication-volume statistic the local-
        #: combine ablation measures.
        self.last_shuffle_sent = 0

    def _local_executor(self) -> "Executor":
        """This engine's cached executor — created once, reused warm.

        A process-backend engine keeps one persistent worker pool for
        its lifetime instead of forking per phase; :meth:`close`
        releases it (GC backstops an engine dropped without closing).
        """
        if self._executor is None:
            self._executor = get_executor(self.backend, self.num_workers)
        return self._executor

    def close(self) -> None:
        """Release the engine's executor pool, if it owns one (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None and self._owns_executor:
            executor.close()
        elif executor is not None:
            self._executor = executor  # shared: still usable, not ours to close

    def __enter__(self) -> "MapReduce":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _run_local(
        self,
        tasks: Iterable[Any],
        call: Callable[[Any, KeyValue], None],
        out: KeyValue,
    ) -> None:
        """Run this rank's share of map/reduce work, emitting into ``out``.

        The serial backend is the legacy in-line loop. Parallel backends
        give every task a private KeyValue and merge the emitted pairs
        in task order, so the pair stream is byte-for-byte the same as
        the serial loop's regardless of scheduling.
        """
        task_list = list(tasks)
        if self.backend == "serial" or len(task_list) <= 1:
            for task in task_list:
                call(task, out)
            return

        def body(_i: int, task: Any) -> list[tuple[Any, Any]]:
            emitted = KeyValue()
            call(task, emitted)
            return emitted.pairs()

        for pairs in self._local_executor().map(body, task_list):
            out.extend(pairs)

    # ------------------------------------------------------------------
    # map phase
    # ------------------------------------------------------------------
    def map_tasks(self, num_tasks: int, map_fn: MapFn, *, append: bool = False) -> int:
        """Call ``map_fn(task_id, kv)`` for tasks assigned cyclically to ranks.

        This is MR-MPI's ``map(nmap, func)``: ``num_tasks`` logical map
        tasks (e.g. one per input file chunk) spread across ranks. With
        ``append=False`` (the default, as in MR-MPI) existing pairs are
        discarded first. Returns the *global* number of pairs emitted.
        """
        if num_tasks < 0:
            raise ValueError(f"num_tasks must be >= 0, got {num_tasks}")
        with self.comm.tracer.span("map", category="mapreduce", tasks=num_tasks):
            if not append:
                self.kv = KeyValue()
            self.kmv = None
            self._run_local(
                range(self.comm.rank, num_tasks, self.comm.size), map_fn, self.kv
            )
            return self.comm.allreduce(len(self.kv), SUM)

    def map_tasks_speculative(self, num_tasks: int, map_fn: MapFn, *, append: bool = False) -> int:
        """Cyclic map with speculative re-execution of dead ranks' tasks.

        The fault-tolerant :meth:`map_tasks`, for worlds launched with
        ``run_spmd(..., on_failure="tolerate")``. After running its own
        tasks each rank reports to rank 0, which detects ranks that died
        during the map phase (their completion token never arrives),
        assigns every orphaned task round-robin over the survivors, and
        — once the adopted tasks have been re-executed — the engine
        *shrinks*: ``self.comm`` is replaced by the survivors-only
        communicator, so the subsequent ``collate``/``reduce``/``gather``
        phases run exactly as on a smaller world.

        Rank 0 must survive (it is the detection point, like the
        MR-MPI driver). Crashes *after* a rank's completion token are
        outside this method's protection — they surface as deadlocks in
        the next collective, which is the honest semantics: speculative
        re-execution guards the map phase, not the whole job.

        Returns the global number of pairs emitted (over survivors).
        """
        if num_tasks < 0:
            raise ValueError(f"num_tasks must be >= 0, got {num_tasks}")
        with self.comm.tracer.span("map_speculative", category="mapreduce", tasks=num_tasks):
            if not append:
                self.kv = KeyValue()
            self.kmv = None
            for task in range(self.comm.rank, num_tasks, self.comm.size):
                map_fn(task, self.kv)
        if self.comm.rank == 0:
            dead = []
            for r in range(1, self.comm.size):
                if self.comm.recv_tolerant(source=r, tag=_TAG_SPECULATIVE_SYNC) is None:
                    dead.append(r)
            live = [r for r in range(self.comm.size) if r not in dead]
            orphans = sorted(
                t for d in dead for t in range(d, num_tasks, self.comm.size)
            )
            adopted: dict[int, list[int]] = {r: [] for r in live}
            for i, task in enumerate(orphans):
                adopted[live[i % len(live)]].append(task)
            for r in live[1:]:
                self.comm.send((dead, adopted[r]), dest=r, tag=_TAG_SPECULATIVE_PLAN)
            my_extra = adopted[0]
        else:
            self.comm.send(self.comm.rank, dest=0, tag=_TAG_SPECULATIVE_SYNC)
            dead, my_extra = self.comm.recv(source=0, tag=_TAG_SPECULATIVE_PLAN)
        for task in my_extra:
            map_fn(task, self.kv)
        if dead:
            self.comm = self.comm.shrink(failed=dead)
        return self.comm.allreduce(len(self.kv), SUM)

    def map_files(
        self,
        paths: Sequence[Any],
        map_fn: Callable[[str, str, KeyValue], None],
        *,
        append: bool = False,
    ) -> int:
        """Parallel-IO map: each rank *reads* and maps its share of files.

        "It also demonstrates parallel IO since multiple MPI ranks
        perform IO in MapReduce MPI" (paper §2): the file list is global
        knowledge, but each file's bytes are read only by the one rank
        that owns it (cyclic assignment). ``map_fn(path, text, kv)``
        receives the file's content. Returns the global emitted-pair
        count.
        """
        from pathlib import Path

        with self.comm.tracer.span("map", category="mapreduce", files=len(paths)):
            if not append:
                self.kv = KeyValue()
            self.kmv = None

            def read_and_map(i: int, kv: KeyValue) -> None:
                path = Path(paths[i])
                map_fn(str(path), path.read_text(), kv)

            self._run_local(
                range(self.comm.rank, len(paths), self.comm.size), read_and_map, self.kv
            )
            return self.comm.allreduce(len(self.kv), SUM)

    def map_items(self, items: Sequence[Any], map_fn: ItemMapFn, *, append: bool = False) -> int:
        """Call ``map_fn(item, kv)`` on this rank's block of a global sequence.

        ``items`` must be identical on every rank (the usual SPMD idiom:
        all ranks hold the same input description, each processes its
        slice). Returns the global number of pairs emitted.
        """
        with self.comm.tracer.span("map", category="mapreduce", items=len(items)):
            if not append:
                self.kv = KeyValue()
            self.kmv = None
            lo, hi = block_bounds(len(items), self.comm.size, self.comm.rank)
            self._run_local(items[lo:hi], map_fn, self.kv)
            return self.comm.allreduce(len(self.kv), SUM)

    # ------------------------------------------------------------------
    # shuffle phase
    # ------------------------------------------------------------------
    def aggregate(self, partitioner: Callable[[Any], int] | None = None) -> int:
        """Redistribute pairs so each key lands on its owning rank.

        The owning rank is ``partitioner(key)`` if given, else the
        deterministic hash placement. Implemented with one ``alltoall``
        — the parallel-IO-plus-communication step the assignment uses to
        illustrate "load balancing through hashing" (paper §2). Returns
        the global number of pairs shipped between ranks.
        """
        size = self.comm.size
        tracer = self.comm.tracer
        with tracer.span("shuffle", category="mapreduce"):
            outboxes: list[list[tuple[Any, Any]]] = [[] for _ in range(size)]
            for key, value in self.kv:
                dest = partitioner(key) % size if partitioner else partition_for(key, size)
                outboxes[dest].append((key, value))
            self.last_shuffle_sent = sum(
                len(box) for r, box in enumerate(outboxes) if r != self.comm.rank
            )
            if tracer.enabled:
                tracer.metrics.counter(
                    "mapreduce.shuffle_pairs", rank=self.comm.world_rank
                ).inc(self.last_shuffle_sent)
            inboxes = self.comm.alltoall(outboxes)
            merged = KeyValue()
            for box in inboxes:
                merged.extend(box)
            self.kv = merged
            self.kmv = None
            return self.comm.allreduce(self.last_shuffle_sent, SUM)

    def convert(self) -> int:
        """Group this rank's pairs by key into a KeyMultiValue (no communication).

        Returns the global number of unique keys.
        """
        with self.comm.tracer.span("group", category="mapreduce"):
            self.kmv = KeyMultiValue.from_pairs(self.kv)
            return self.comm.allreduce(len(self.kmv), SUM)

    def collate(self, partitioner: Callable[[Any], int] | None = None) -> int:
        """``aggregate`` + ``convert``: the canonical shuffle-and-group step.

        Returns the global number of unique keys (MR-MPI's convention).
        """
        self.aggregate(partitioner)
        return self.convert()

    # ------------------------------------------------------------------
    # reduce phase
    # ------------------------------------------------------------------
    def reduce(self, reduce_fn: ReduceFn) -> int:
        """Call ``reduce_fn(key, values, kv_out)`` per grouped key.

        Requires a prior ``convert``/``collate``. The emitted pairs
        replace the dataset. Returns the global number of emitted pairs.
        """
        if self.kmv is None:
            raise RuntimeError("reduce() requires collate() or convert() first")
        with self.comm.tracer.span("reduce", category="mapreduce"):
            out = KeyValue()
            self._run_local(
                self.kmv.items(),
                lambda kv_item, kv: reduce_fn(kv_item[0], list(kv_item[1]), kv),
                out,
            )
            self.kv = out
            self.kmv = None
            return self.comm.allreduce(len(out), SUM)

    def local_combine(self, reduce_fn: ReduceFn) -> int:
        """Pre-reduce *locally* before any shuffle — the paper's optimization.

        "Adding local reductions at each rank … noticeably improves the
        communication cost" (paper §2): combining same-key pairs on the
        rank that produced them shrinks what ``aggregate`` must ship.
        No communication happens here; returns the local pair count.
        """
        grouped = KeyMultiValue.from_pairs(self.kv)
        out = KeyValue()
        for key, values in grouped.items():
            reduce_fn(key, values, out)
        self.kv = out
        self.kmv = None
        return len(out)

    # ------------------------------------------------------------------
    # output phase
    # ------------------------------------------------------------------
    def gather(self, root: int = 0) -> list[tuple[Any, Any]] | None:
        """All pairs to ``root`` (concatenated in rank order); None elsewhere."""
        with self.comm.tracer.span("gather", category="mapreduce", root=root):
            chunks = self.comm.gather(self.kv.pairs(), root=root)
            if chunks is None:
                return None
            return [pair for chunk in chunks for pair in chunk]

    def gather_all(self) -> list[tuple[Any, Any]]:
        """All pairs on every rank (rank-order concatenation)."""
        chunks = self.comm.allgather(self.kv.pairs())
        return [pair for chunk in chunks for pair in chunk]

    def sort_by_key(self) -> None:
        """Sort this rank's pairs by key (keys must be mutually comparable)."""
        self.kv = KeyValue(sorted(self.kv.pairs(), key=lambda p: p[0]))
        self.kmv = None

    def sort_by_value(self) -> None:
        """Sort this rank's pairs by value (MR-MPI's sort_values)."""
        self.kv = KeyValue(sorted(self.kv.pairs(), key=lambda p: p[1]))
        self.kmv = None

    def add(self, other: "MapReduce") -> int:
        """Append another MapReduce object's local pairs (MR-MPI's add).

        Both objects must live on the same communicator. Returns the
        global pair count of the merged dataset.
        """
        if other.comm is not self.comm:
            raise ValueError("can only add MapReduce objects on the same communicator")
        self.kv.extend(other.kv.pairs())
        self.kmv = None
        return self.comm.allreduce(len(self.kv), SUM)

    def map_kv(self, map_fn: Callable[[Any, Any, KeyValue], None]) -> int:
        """Re-map existing pairs: ``map_fn(key, value, kv_out)`` per pair.

        MR-MPI's ``map(mr, func)`` form — the way pipelines chain one
        MapReduce stage's output into the next stage's map. Local only;
        returns the global emitted-pair count.
        """
        out = KeyValue()
        for key, value in self.kv:
            map_fn(key, value, out)
        self.kv = out
        self.kmv = None
        return self.comm.allreduce(len(out), SUM)

    def scrunch(self, root: int = 0) -> int:
        """Gather all pairs onto one rank and convert (MR-MPI's scrunch).

        Useful for a final small reduction that must see everything —
        e.g. a global top-k. Returns the number of unique keys on root
        (0 elsewhere).
        """
        everyone = self.comm.gather(self.kv.pairs(), root=root)
        if self.comm.rank == root:
            merged = KeyValue()
            for chunk in everyone:
                merged.extend(chunk)
            self.kv = merged
            self.kmv = KeyMultiValue.from_pairs(merged)
            count = len(self.kmv)
        else:
            self.kv = KeyValue()
            self.kmv = KeyMultiValue()
            count = 0
        return count

    @property
    def num_pairs_local(self) -> int:
        """Pairs held by this rank."""
        return len(self.kv)

    def num_pairs_global(self) -> int:
        """Total pairs across ranks (collective)."""
        return self.comm.allreduce(len(self.kv), SUM)
