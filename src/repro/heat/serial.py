"""Serial reference solver (Example1.chpl before any distribution).

The algorithm exactly as the assignment states it:

1. Ω = the n discrete points; Ω̂ = Ω without the two boundary points;
2. array ``u`` over Ω with initial conditions;
3. temporary copy ``un``;
4. per step: swap u ↔ un, then compute un over Ω̂ from u.

Stability of the explicit scheme requires α ≤ 0.5 (α here is the
compound coefficient α·Δt/Δx²); the solvers validate that so students
hit a clear error instead of a blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require_nonnegative_int

__all__ = ["HeatStats", "solve_serial", "check_alpha"]


@dataclass
class HeatStats:
    """Execution accounting the heat benchmarks compare across solvers."""

    #: Total tasks spawned over the whole run (forall re-spawns per step).
    task_spawns: int = 0
    #: Remote element reads (implicit, fine-grained communication).
    remote_gets: int = 0
    #: Remote element writes.
    remote_puts: int = 0
    #: Barrier waits executed per task (explicit synchronization).
    barrier_waits: int = 0
    extra: dict = field(default_factory=dict)


def check_alpha(alpha: float) -> float:
    """Validate the compound diffusion coefficient for explicit stability."""
    if not 0.0 < alpha <= 0.5:
        raise ValueError(
            f"alpha must be in (0, 0.5] for a stable explicit scheme, got {alpha}"
        )
    return float(alpha)


def solve_serial(u0: np.ndarray, alpha: float, num_steps: int) -> tuple[np.ndarray, HeatStats]:
    """Evolve ``u0`` for ``num_steps`` with fixed (Dirichlet) boundaries.

    Returns (final_u, stats). ``u0`` is not mutated.
    """
    alpha = check_alpha(alpha)
    require_nonnegative_int("num_steps", num_steps)
    u = np.asarray(u0, dtype=float).copy()
    if u.ndim != 1 or u.size < 3:
        raise ValueError("u0 must be 1-D with at least 3 points")
    un = u.copy()
    for _ in range(num_steps):
        u, un = un, u                                   # 4.1 swap
        un[1:-1] = u[1:-1] + alpha * (u[:-2] - 2.0 * u[1:-1] + u[2:])  # 4.2 stencil
    return un, HeatStats(task_spawns=0)
