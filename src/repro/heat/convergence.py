"""Grid-convergence studies for the heat solvers.

A standard scientific-computing verification (and a natural extension
exercise for the §6 assignment): solve the same physical problem on
finer and finer grids and confirm the error against the continuous
solution shrinks at the scheme's theoretical order — O(Δx²) in space
for the centered stencil, at fixed diffusion number α.
"""

from __future__ import annotations

import numpy as np

from repro.heat.serial import check_alpha, solve_serial
from repro.util.validation import require_positive_int

__all__ = ["continuous_sine_solution", "convergence_study", "observed_order"]


def continuous_sine_solution(n: int, alpha: float, num_steps: int, mode: int = 1) -> np.ndarray:
    """The continuous PDE's solution sampled on the grid.

    With compound coefficient α = D·Δt/Δx² fixed, ``num_steps`` steps on
    an ``n``-point grid correspond to physical time
    T = num_steps·α·Δx² (in units where D = 1), and
    u(x, T) = sin(mπx)·exp(−(mπ)²·T).
    """
    require_positive_int("n", n)
    alpha = check_alpha(alpha)
    dx = 1.0 / (n - 1)
    physical_time = num_steps * alpha * dx * dx
    x = np.linspace(0.0, 1.0, n)
    return np.sin(mode * np.pi * x) * np.exp(-((mode * np.pi) ** 2) * physical_time)


def convergence_study(
    grid_sizes: list[int],
    alpha: float = 0.25,
    *,
    physical_time: float = 0.05,
    mode: int = 1,
) -> list[tuple[int, float]]:
    """(n, max-error vs continuous solution) at a fixed physical time.

    Each grid chooses its step count so all runs reach the same
    physical time: steps = T / (α·Δx²) — so refining the grid also
    refines the time step, and the leading error is the O(Δx²) spatial
    term.
    """
    if not grid_sizes:
        raise ValueError("grid_sizes must be non-empty")
    alpha = check_alpha(alpha)
    out = []
    for n in sorted(set(grid_sizes)):
        require_positive_int("n", n)
        if n < 4:
            raise ValueError("grids need at least 4 points")
        dx = 1.0 / (n - 1)
        steps = max(1, int(round(physical_time / (alpha * dx * dx))))
        x = np.linspace(0.0, 1.0, n)
        u0 = np.sin(mode * np.pi * x)
        u0[0] = u0[-1] = 0.0
        numeric, _ = solve_serial(u0, alpha, steps)
        exact = continuous_sine_solution(n, alpha, steps, mode)
        out.append((n, float(np.abs(numeric - exact).max())))
    return out


def observed_order(study: list[tuple[int, float]]) -> float:
    """Least-squares slope of log(error) vs log(Δx) — the observed order.

    ≈2 for this scheme (the centered second difference), the number the
    verification exercise asks students to produce.
    """
    if len(study) < 2:
        raise ValueError("need at least two grid sizes")
    log_dx = np.log([1.0 / (n - 1) for n, _ in study])
    log_err = np.log([max(err, 1e-300) for _, err in study])
    slope, _ = np.polyfit(log_dx, log_err, 1)
    return float(slope)
