"""Exact solutions for verifying the discrete solvers.

The explicit stencil is linear, so its eigenmodes are known in closed
form: on n points with zero boundaries, the mode sin(kπ·j/(n−1)) decays
by the factor

    λ_k = 1 − 4 α sin²(k π / (2 (n − 1)))

per step. A solver that is *exactly* the discrete scheme must match
λ_k^t · sin(kπ j/(n−1)) to rounding error — a much sharper check than
comparing against the continuous PDE solution.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["sine_initial_condition", "discrete_sine_solution", "steady_state", "decay_factor"]


def sine_initial_condition(n: int, mode: int = 1) -> np.ndarray:
    """sin(mode·π·x) sampled on n points of [0, 1]; zero at both ends."""
    require_positive_int("n", n)
    require_positive_int("mode", mode)
    x = np.linspace(0.0, 1.0, n)
    u = np.sin(mode * np.pi * x)
    u[0] = 0.0
    u[-1] = 0.0
    return u


def decay_factor(n: int, alpha: float, mode: int = 1) -> float:
    """Per-step amplitude factor λ of the given eigenmode."""
    require_positive_int("n", n)
    return 1.0 - 4.0 * alpha * np.sin(mode * np.pi / (2 * (n - 1))) ** 2


def discrete_sine_solution(n: int, alpha: float, num_steps: int, mode: int = 1) -> np.ndarray:
    """The exact state of the discrete scheme after ``num_steps`` steps
    from :func:`sine_initial_condition`."""
    require_nonnegative_int("num_steps", num_steps)
    lam = decay_factor(n, alpha, mode)
    return lam**num_steps * sine_initial_condition(n, mode)


def steady_state(n: int, left: float, right: float) -> np.ndarray:
    """The long-time limit with Dirichlet values ``left``/``right``: the
    linear profile between them."""
    require_positive_int("n", n)
    return np.linspace(left, right, n)
