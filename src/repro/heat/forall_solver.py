"""Part 1: the distributed ``forall`` solver over a Block domain.

The student converts ``Example1.chpl`` by declaring the arrays over a
``Block``-distributed domain; the per-step ``forall`` then runs each
locale's chunk on its locale. The upside is brevity; the downsides the
assignment wants noticed are

- a fresh task team is created and destroyed **every time step**
  (counted in ``stats.task_spawns``), and
- the stencil reads the neighbours of chunk-edge points from *other*
  locales implicitly (counted in ``stats.remote_gets``).
"""

from __future__ import annotations

import numpy as np

from repro.chapel import BlockArray, BlockDist, coforall, here, on
from repro.chapel.locales import Locale
from repro.heat.serial import HeatStats, check_alpha
from repro.util.validation import require_nonnegative_int

__all__ = ["solve_forall"]


def solve_forall(
    u0: np.ndarray,
    alpha: float,
    num_steps: int,
    target_locales: list[Locale],
    *,
    elementwise: bool = False,
) -> tuple[np.ndarray, HeatStats]:
    """Distributed forall solver; bitwise-equal to :func:`solve_serial`.

    ``elementwise=True`` runs the literal per-index loop (every boundary
    read individually counted — instructive, slow); the default pulls
    each locale's chunk plus one halo cell per side with a bulk
    ``get_slice`` and computes vectorized, the way a tuned Chapel
    program leans on bulk array operations.
    """
    alpha = check_alpha(alpha)
    require_nonnegative_int("num_steps", num_steps)
    u0 = np.asarray(u0, dtype=float)
    if u0.ndim != 1 or u0.size < 3:
        raise ValueError("u0 must be 1-D with at least 3 points")
    for loc in target_locales:
        loc.reset_counters()

    n = u0.size
    dom = BlockDist.create_domain(n, target_locales)
    u = BlockArray(dom)
    un = BlockArray(dom)
    u.fill_from(u0)
    un.fill_from(u0)
    stats = HeatStats()

    def step_chunk(locale_index: int) -> None:
        # The task the forall runs for one locale: update the
        # interior points of this locale's chunk.
        with on(dom.target_locales[locale_index]):
            sub = dom.local_subdomain(locale_index)
            lo = max(sub.low, 1)
            hi = min(sub.high, n - 1)
            if lo >= hi:
                return
            if elementwise:
                for i in range(lo, hi):
                    un[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1])
            else:
                window = u.get_slice(lo - 1, hi + 1)  # halo reads counted
                out = un.local_view(locale_index)
                base = sub.low
                out[lo - base : hi - base] = window[1:-1] + alpha * (
                    window[:-2] - 2.0 * window[1:-1] + window[2:]
                )

    for _ in range(num_steps):
        u.swap_with(un)                       # 4.1 swap (O(1))
        # forall over the distributed domain: one task per locale,
        # created now and joined at the end of the statement.
        coforall(range(dom.num_locales), step_chunk)
        stats.task_spawns += dom.num_locales

    stats.remote_gets = sum(loc.remote_gets for loc in target_locales)
    stats.remote_puts = sum(loc.remote_puts for loc in target_locales)
    return un.to_numpy(), stats
