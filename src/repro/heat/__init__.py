"""1-D heat equation solvers in Chapel style — Peachy assignment §6.

The PDE ∂u/∂t = α ∂²u/∂x², discretized as

    u[n+1][x] = u[n][x] + α (u[n][x−1] − 2 u[n][x] + u[n][x+1])

with Dirichlet boundaries, solved three ways:

- :mod:`repro.heat.serial` — the single-locale numpy reference
  (``Example1.chpl`` before distribution);
- :mod:`repro.heat.forall_solver` — part 1: a ``forall`` over a
  ``Block``-distributed domain; tasks are created per step and
  cross-locale stencil reads happen implicitly (counted);
- :mod:`repro.heat.coforall_solver` — part 2: one persistent task per
  locale (``coforall … on loc``), task-local arrays, explicit halo-cell
  exchange, and barrier synchronization — less overhead, explicit
  communication;
- :mod:`repro.heat.executor_solver` — the shared-memory pool model:
  grids published into zero-copy segments, one warm ``Executor.map``
  per step over static interior blocks (the counterpoint to the
  Chapel-style solvers' visible communication);
- :mod:`repro.heat.analytic` — exact discrete eigenmode solutions and
  steady states for verification.

All three produce bitwise-identical results (same elementwise float
operations); what differs — and what the benchmarks measure — is task
churn and communication granularity.
"""

from repro.heat.analytic import (
    discrete_sine_solution,
    sine_initial_condition,
    steady_state,
)
from repro.heat.coforall_solver import solve_coforall
from repro.heat.convergence import (
    continuous_sine_solution,
    convergence_study,
    observed_order,
)
from repro.heat.executor_solver import solve_executor
from repro.heat.forall_solver import solve_forall
from repro.heat.mpi2d import run_mpi_2d, solve_serial_2d
from repro.heat.serial import HeatStats, solve_serial

__all__ = [
    "solve_serial",
    "solve_forall",
    "solve_coforall",
    "solve_executor",
    "HeatStats",
    "sine_initial_condition",
    "discrete_sine_solution",
    "steady_state",
    "continuous_sine_solution",
    "convergence_study",
    "observed_order",
    "solve_serial_2d",
    "run_mpi_2d",
]
