"""Part 2: the explicit task-parallel solver with halo exchange.

``Example2.chpl``'s structure, distributed: one long-lived task per
locale (``coforall loc in Locales do on loc``), each owning a local
array of its chunk plus two halo cells. Per step every task:

1. computes its interior from purely local data;
2. publishes its edge values into the *global halo array* slots of its
   neighbours (two bulk puts);
3. waits at the barrier;
4. copies its neighbours' published values into its own halo cells;
5. waits at the barrier again before the next step.

Compared with part 1 this trades implicit fine-grained reads for two
explicit transfers per task per step, and spawns its tasks exactly
once — the overhead reduction the assignment asks students to achieve.
"""

from __future__ import annotations

import numpy as np

from repro.chapel import TaskBarrier, coforall, on
from repro.chapel.locales import Locale
from repro.heat.serial import HeatStats, check_alpha
from repro.util.partition import block_bounds
from repro.util.validation import require_nonnegative_int

__all__ = ["solve_coforall"]


def solve_coforall(
    u0: np.ndarray,
    alpha: float,
    num_steps: int,
    target_locales: list[Locale],
) -> tuple[np.ndarray, HeatStats]:
    """Persistent-task halo-exchange solver; bitwise-equal to serial."""
    alpha = check_alpha(alpha)
    require_nonnegative_int("num_steps", num_steps)
    u0 = np.asarray(u0, dtype=float)
    if u0.ndim != 1 or u0.size < 3:
        raise ValueError("u0 must be 1-D with at least 3 points")

    n = u0.size
    num_tasks = len(target_locales)
    if num_tasks < 1:
        raise ValueError("need at least one locale")
    bounds = [block_bounds(n, num_tasks, t) for t in range(num_tasks)]
    barrier = TaskBarrier(num_tasks)
    # halo[t] = [value of left neighbour's right edge, value of right
    # neighbour's left edge] — the global "halo cells" array of the
    # assignment, written by neighbours, read by task t.
    halo = np.zeros((num_tasks, 2))
    result = np.empty(n)
    stats = HeatStats(task_spawns=num_tasks)
    comm_lock = __import__("threading").Lock()

    def task(t: int) -> None:
        lo, hi = bounds[t]
        with on(target_locales[t]):
            # Task-local arrays: chunk plus one halo cell each side
            # (array-slice initialization, as in the Chapel original).
            local = np.empty(hi - lo + 2)
            local[1:-1] = u0[lo:hi]
            local[0] = u0[lo - 1] if lo > 0 else u0[0]
            local[-1] = u0[hi] if hi < n else u0[n - 1]
            local_n = local.copy()

            for _ in range(num_steps):
                local, local_n = local_n, local
                # 1. interior update from local data only.
                lo_g = max(lo, 1)
                hi_g = min(hi, n - 1)
                if lo_g < hi_g:
                    a = lo_g - lo + 1
                    b = hi_g - lo + 1
                    local_n[a:b] = local[a:b] + alpha * (
                        local[a - 1 : b - 1] - 2.0 * local[a:b] + local[a + 1 : b + 1]
                    )
                # Boundary points never change (Dirichlet).
                if lo == 0:
                    local_n[1] = local[1]
                if hi == n:
                    local_n[-2] = local[-2]

                # 2. publish edges into the neighbours' halo slots.
                with comm_lock:
                    if t > 0:
                        halo[t - 1][1] = local_n[1]       # my left edge -> left nbr
                        target_locales[t - 1].count_put()
                    if t < num_tasks - 1:
                        halo[t + 1][0] = local_n[-2]      # my right edge -> right nbr
                        target_locales[t + 1].count_put()
                # 3. everyone has published.
                barrier.wait()
                # 4. pull my halo cells.
                if t > 0:
                    local_n[0] = halo[t][0]
                if t < num_tasks - 1:
                    local_n[-1] = halo[t][1]
                # 5. everyone has consumed before anyone overwrites.
                barrier.wait()

            final = local_n if num_steps > 0 else local
            result[lo:hi] = final[1:-1]

    for loc in target_locales:
        loc.reset_counters()
    coforall(range(num_tasks), task)
    stats.remote_puts = sum(loc.remote_puts for loc in target_locales)
    stats.remote_gets = sum(loc.remote_gets for loc in target_locales)
    stats.barrier_waits = 2 * num_steps
    return result.copy(), stats
