"""The heat stencil over the executor pool: shared grids, zero-copy halos.

The Chapel-lineage solvers in this package make communication *visible*
(``remote_gets`` per halo read, task teams per step); this solver is
the other end of the paper's comparison — the shared-memory pool model,
where the whole grid lives in two published segments and a time step is
one warm ``Executor.map`` over static interior blocks. Workers read
their block plus one halo cell per side straight out of the *source*
segment and write the *destination* segment in place, so the only
per-step traffic is the dispatch messages themselves.

Double buffering replaces the serial solver's O(1) swap: the two grid
segments alternate source/destination roles by step parity (a swap of
*names*, not bytes), and boundaries are never written, so the Dirichlet
conditions ride along from the initial copy. The stencil expression is
byte-for-byte the serial one over the same float64 grid, which makes
every backend bit-identical to :func:`repro.heat.serial.solve_serial` —
asserted in ``tests/heat/test_executor_solver.py``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core.executor import BACKENDS, DataRef, Executor, get_executor
from repro.heat.serial import HeatStats, check_alpha
from repro.util.partition import block_partition
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = ["solve_executor"]


def _step_task(
    src_ref: DataRef,
    dst_ref: DataRef,
    alpha: float,
    _index: int,
    block: tuple[int, int],
) -> int:
    """Update one interior block: halo reads from src, in-place write to dst.

    Blocks partition the interior, so destination writes are disjoint
    (the writable-ref contract); the halo cells ``lo-1``/``hi`` are
    reads only. Returns the block size as a lightweight progress value.
    """
    lo, hi = block
    src = src_ref.array()
    dst = dst_ref.array()
    window = src[lo - 1 : hi + 1]
    dst[lo:hi] = window[1:-1] + alpha * (window[:-2] - 2.0 * window[1:-1] + window[2:])
    return hi - lo


def solve_executor(
    u0: np.ndarray,
    alpha: float,
    num_steps: int,
    *,
    num_workers: int = 4,
    backend: "str | Executor" = "process",
) -> tuple[np.ndarray, HeatStats]:
    """Evolve ``u0`` on an executor backend; bitwise-equal to serial.

    ``backend`` accepts a name or a live :class:`Executor` — pass a warm
    :class:`ProcessExecutor` to reuse its pool across solves (the
    executor then remains the caller's to close). ``u0`` is not mutated.
    """
    alpha = check_alpha(alpha)
    require_nonnegative_int("num_steps", num_steps)
    require_positive_int("num_workers", num_workers)
    if not isinstance(backend, Executor) and backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    u0 = np.asarray(u0, dtype=float)
    if u0.ndim != 1 or u0.size < 3:
        raise ValueError("u0 must be 1-D with at least 3 points")

    n = u0.size
    # Static interior blocks: [1, n-1) split evenly, fixed for the run.
    blocks = [
        (r.start + 1, r.stop + 1)
        for r in block_partition(n - 2, min(num_workers, n - 2))
        if r.stop > r.start
    ]
    stats = HeatStats()
    owns_executor = not isinstance(backend, Executor)
    executor = get_executor(backend, num_workers)
    stats.extra["backend"] = executor.name
    stats.extra["blocks"] = len(blocks)

    refs: list[DataRef] = []
    try:
        # Double buffer: both start as u0 (boundaries included, never
        # rewritten); roles alternate by step parity.
        refs = [executor.publish(u0, writable=True), executor.publish(u0, writable=True)]
        for step in range(num_steps):
            src_ref, dst_ref = refs[step % 2], refs[1 - step % 2]
            executor.map(functools.partial(_step_task, src_ref, dst_ref, alpha), blocks)
            stats.task_spawns += len(blocks)
        final = np.array(refs[num_steps % 2].array())  # outlive the segments
    finally:
        for ref in refs:
            executor.unpublish(ref)
        if owns_executor:
            executor.close()
    return final, stats
