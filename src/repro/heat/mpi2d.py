"""2-D heat equation over an MPI Cartesian grid — the distribution exercise.

The Chapel assignment is deliberately 1-D; its natural follow-on (and
the reason :class:`repro.mpi.CartComm` exists) is the 2-D version:
partition the plate over a 2-D process grid, exchange four halo edges
per step, and verify bitwise agreement with the serial stencil.

Five-point explicit scheme with Dirichlet boundaries::

    u' = u + alpha * (u[N] + u[S] + u[E] + u[W] - 4 u)

stable for alpha ≤ 0.25.
"""

from __future__ import annotations

import numpy as np

from repro.mpi import Communicator, run_spmd
from repro.mpi.topology import CartComm, dims_create
from repro.util.partition import block_bounds
from repro.util.validation import require_nonnegative_int

__all__ = ["solve_serial_2d", "solve_mpi_2d", "run_mpi_2d"]


def _check_alpha_2d(alpha: float) -> float:
    if not 0.0 < alpha <= 0.25:
        raise ValueError(
            f"alpha must be in (0, 0.25] for a stable 2-D explicit scheme, got {alpha}"
        )
    return float(alpha)


def solve_serial_2d(u0: np.ndarray, alpha: float, num_steps: int) -> np.ndarray:
    """Serial reference: evolve a 2-D field with fixed boundaries."""
    alpha = _check_alpha_2d(alpha)
    require_nonnegative_int("num_steps", num_steps)
    u = np.asarray(u0, dtype=float).copy()
    if u.ndim != 2 or min(u.shape) < 3:
        raise ValueError("u0 must be 2-D with at least 3 points per axis")
    un = u.copy()
    for _ in range(num_steps):
        u, un = un, u
        un[1:-1, 1:-1] = u[1:-1, 1:-1] + alpha * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] - 4.0 * u[1:-1, 1:-1]
        )
    return un


def solve_mpi_2d(
    comm: Communicator, u0: np.ndarray, alpha: float, num_steps: int
) -> np.ndarray:
    """SPMD rank body: 2-D block decomposition with 4-way halo exchange.

    ``u0`` is the full field, identical on every rank (the SPMD shared-
    input convention). Returns this rank's final block; the launcher
    reassembles. Bitwise-equal to :func:`solve_serial_2d`.
    """
    alpha = _check_alpha_2d(alpha)
    require_nonnegative_int("num_steps", num_steps)
    u0 = np.asarray(u0, dtype=float)
    rows, cols = u0.shape

    pr, pc = dims_create(comm.size, 2)
    cart = CartComm(comm, dims=[pr, pc], periods=[False, False])
    my_r, my_c = cart.coords
    rlo, rhi = block_bounds(rows, pr, my_r)
    clo, chi = block_bounds(cols, pc, my_c)

    # Local block with a one-cell halo ring.
    local = np.zeros((rhi - rlo + 2, chi - clo + 2))
    local[1:-1, 1:-1] = u0[rlo:rhi, clo:chi]
    # Seed halos from the initial field (interior neighbours will refresh
    # them each step; physical-boundary halos stay unused).
    if rlo > 0:
        local[0, 1:-1] = u0[rlo - 1, clo:chi]
    if rhi < rows:
        local[-1, 1:-1] = u0[rhi, clo:chi]
    if clo > 0:
        local[1:-1, 0] = u0[rlo:rhi, clo - 1]
    if chi < cols:
        local[1:-1, -1] = u0[rlo:rhi, chi]
    local_n = local.copy()

    # Explicit neighbour ranks (None at the plate edge).
    def neighbour(dr: int, dc: int) -> int | None:
        r, c = my_r + dr, my_c + dc
        if 0 <= r < pr and 0 <= c < pc:
            return cart.rank_of([r, c])
        return None

    up = neighbour(-1, 0)
    down = neighbour(1, 0)
    left = neighbour(0, -1)
    right = neighbour(0, 1)

    for step in range(num_steps):
        local, local_n = local_n, local
        # Interior update, clipped to the global interior (Dirichlet edges fixed).
        glo_r = max(rlo, 1)
        ghi_r = min(rhi, rows - 1)
        glo_c = max(clo, 1)
        ghi_c = min(chi, cols - 1)
        if glo_r < ghi_r and glo_c < ghi_c:
            a = glo_r - rlo + 1
            b = ghi_r - rlo + 1
            c = glo_c - clo + 1
            d = ghi_c - clo + 1
            local_n[a:b, c:d] = local[a:b, c:d] + alpha * (
                local[a - 1 : b - 1, c:d]
                + local[a + 1 : b + 1, c:d]
                + local[a:b, c - 1 : d - 1]
                + local[a:b, c + 1 : d + 1]
                - 4.0 * local[a:b, c:d]
            )
        # Dirichlet cells inside this block keep their values.
        if rlo == 0:
            local_n[1, 1:-1] = local[1, 1:-1]
        if rhi == rows:
            local_n[-2, 1:-1] = local[-2, 1:-1]
        if clo == 0:
            local_n[1:-1, 1] = local[1:-1, 1]
        if chi == cols:
            local_n[1:-1, -2] = local[1:-1, -2]

        # Four-way halo exchange. Sends are buffered, so posting all
        # sends before any receive is deadlock-free. Tag = direction the
        # payload travels: my top row goes UP (tag 10), and I fill my
        # bottom halo with the tag-10 row arriving from DOWN, etc.
        with comm.tracer.span("halo_exchange", category="heat", step=step):
            if up is not None:
                comm.send(local_n[1, 1:-1].copy(), dest=up, tag=10)
            if down is not None:
                comm.send(local_n[-2, 1:-1].copy(), dest=down, tag=11)
            if left is not None:
                comm.send(local_n[1:-1, 1].copy(), dest=left, tag=12)
            if right is not None:
                comm.send(local_n[1:-1, -2].copy(), dest=right, tag=13)
            if down is not None:
                local_n[-1, 1:-1] = comm.recv(source=down, tag=10)
            if up is not None:
                local_n[0, 1:-1] = comm.recv(source=up, tag=11)
            if right is not None:
                local_n[1:-1, -1] = comm.recv(source=right, tag=12)
            if left is not None:
                local_n[1:-1, 0] = comm.recv(source=left, tag=13)

    return local_n[1:-1, 1:-1].copy()


def run_mpi_2d(
    num_ranks: int, u0: np.ndarray, alpha: float, num_steps: int
) -> np.ndarray:
    """Launcher: distributed 2-D solve, reassembled to the full field."""
    u0 = np.asarray(u0, dtype=float)
    rows, cols = u0.shape
    blocks = run_spmd(num_ranks, solve_mpi_2d, u0, alpha, num_steps)
    pr, pc = dims_create(num_ranks, 2)
    out = np.empty_like(u0)
    for rank, block in enumerate(blocks):
        my_r, my_c = divmod(rank, pc)
        rlo, rhi = block_bounds(rows, pr, my_r)
        clo, chi = block_bounds(cols, pc, my_c)
        out[rlo:rhi, clo:chi] = block
    return out
