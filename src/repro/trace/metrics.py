"""Counters, gauges, and histograms — the numeric half of observability.

Spans say *where time went*; metrics say *how much of what happened*:
``mpi.messages``, ``mpi.payload_bytes``, ``mapreduce.shuffle_pairs``,
``kmeans.iteration_shift``, ``hpo.trial_seconds``. A
:class:`MetricsRegistry` is a get-or-create store of named instruments,
optionally split by labels (``counter("mpi.messages", rank=2)``), so
per-rank and per-pair breakdowns are one keyword away.

All instruments are thread-safe. A histogram keeps summary statistics
(count/total/min/max), not samples — bounded memory no matter how hot
the path.
"""

from __future__ import annotations

import threading
from typing import Any, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "format_metrics_table"]


class Counter:
    """A monotonically increasing count (messages posted, pairs shuffled)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise ValueError(f"counters only go up; got increment {n}")
        with self._lock:
            self.value += n

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for reports."""
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins level (queue depth, live worker count)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0

    def set(self, v: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = v

    def add(self, n: float) -> None:
        """Adjust the level by ``n`` (may be negative)."""
        with self._lock:
            self.value += n

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for reports."""
        with self._lock:
            return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics over observed values (latencies, shifts, sizes)."""

    __slots__ = ("_lock", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, v: float) -> None:
        """Fold one observation into the summary."""
        v = float(v)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for reports (empty histograms report zeros)."""
        with self._lock:
            if not self.count:
                return {"type": "histogram", "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "type": "histogram",
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
            }


Metric = Union[Counter, Gauge, Histogram]


def _render_key(name: str, labels: tuple[tuple[str, Any], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create store of named (and optionally labeled) instruments.

    The same ``(name, labels)`` always returns the same instrument; a
    name may not change kind (a counter cannot come back as a gauge).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, Any], ...]], Metric] = {}

    def _get(self, cls: type, name: str, labels: dict[str, Any]) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls()
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {_render_key(*key)!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``name`` + labels (created on first use)."""
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``name`` + labels (created on first use)."""
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram registered under ``name`` + labels (created on first use)."""
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    def clear(self) -> None:
        """Forget every instrument."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as ``{rendered_name: summary_dict}``, sorted by name.

        Rendered names include labels Prometheus-style:
        ``mpi.messages{rank=2}``.
        """
        with self._lock:
            items = list(self._metrics.items())
        return {_render_key(name, labels): m.snapshot() for (name, labels), m in sorted(items)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def format_metrics_table(registry: MetricsRegistry, *, title: str = "metrics") -> str:
    """Render a registry as an aligned plain-text summary table.

    Counters and gauges show their value; histograms show
    count/mean/min/max — the at-a-glance report the workloads print
    after a traced run.
    """
    snap = registry.snapshot()
    if not snap:
        return f"{title}: (empty)"

    def fmt(v: float) -> str:
        if isinstance(v, float) and not v.is_integer():
            return f"{v:.6g}"
        return str(int(v))

    rows: list[tuple[str, str, str]] = []
    for name, summary in snap.items():
        kind = summary["type"]
        if kind == "histogram":
            detail = (
                f"count={summary['count']} mean={fmt(summary['mean'])} "
                f"min={fmt(summary['min'])} max={fmt(summary['max'])}"
            )
        else:
            detail = fmt(summary["value"])
        rows.append((name, kind, detail))
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    lines = [title, f"{'metric':<{name_w}}  {'type':<{kind_w}}  value"]
    for name, kind, detail in rows:
        lines.append(f"{name:<{name_w}}  {kind:<{kind_w}}  {detail}")
    return "\n".join(lines)
