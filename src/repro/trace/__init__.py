"""Unified deterministic tracing & metrics for every substrate and workload.

The measurement substrate the assignments keep reaching for: load
imbalance in k-means (§3), shuffle volume in MapReduce (§2/§4),
barrier/halo overhead in the heat solvers (§6), task distribution when
N ∤ T in HPO (§7) — all hinge on *seeing* parallel behaviour. This
package provides one process-wide answer:

- :class:`Tracer` — structured span/instant events, each stamped with a
  wall clock *and* a per-scope **logical clock** whose sequence is
  bit-reproducible across runs of a deterministic workload;
- :class:`MetricsRegistry` — counters, gauges, histograms (e.g.
  ``mpi.messages``, ``mpi.barrier_wait_seconds``,
  ``mapreduce.shuffle_pairs``, ``kmeans.iteration_shift``,
  ``hpo.trial_seconds``), with per-label breakdowns;
- exporters — Chrome ``chrome://tracing`` JSON
  (:func:`to_chrome_trace`), a plain-text per-rank timeline
  (:func:`render_timeline`), and a metrics summary table
  (:func:`format_metrics_table`);
- history — the longitudinal layer (``repro.trace.history``): the
  canonical :class:`BenchRecord` schema every ``BENCH_*.json`` payload
  normalizes into, the append-only ``benchmarks/history.jsonl`` store,
  rolling-baseline trend analysis (:func:`analyze_trends`), and the
  deterministic ``TRENDS.md`` renderer (:func:`render_trends`) driven
  by the campaign runner in ``tools/trials/`` (docs/trials.md).

The default tracer is disabled and free on the hot path (gated < 5% by
``benchmarks/test_trace_overhead.py``). Enable per run::

    from repro.trace import Tracer, use_tracer, render_timeline

    with use_tracer(Tracer()) as t:
        run_spmd(4, program)
    print(render_timeline(t))

See docs/observability.md for the full guide.
"""

from repro.trace.export import render_timeline, to_chrome_trace, write_chrome_trace
from repro.trace.history import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    Finding,
    analyze_trends,
    append_history,
    history_segments,
    load_bench_dir,
    load_bench_file,
    load_history,
    make_record,
    migrate_bench_payload,
    render_trends,
    result_digest,
    sparkline,
    validate_bench_payload,
)
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics_table,
)
from repro.trace.tracer import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metrics_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_timeline",
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "Finding",
    "make_record",
    "validate_bench_payload",
    "migrate_bench_payload",
    "load_bench_file",
    "load_bench_dir",
    "append_history",
    "history_segments",
    "load_history",
    "result_digest",
    "analyze_trends",
    "sparkline",
    "render_trends",
]
