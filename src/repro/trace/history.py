"""Canonical BENCH records, performance history, and trend analysis.

``benchmarks/out/`` accumulates one ``BENCH_<name>.json`` snapshot per
benchmark run, but a snapshot is not a trajectory: nothing relates this
week's numbers to last week's. This module is the missing longitudinal
half of the observability layer:

- :class:`BenchRecord` — the canonical, versioned schema every bench
  payload normalizes into: a workload name, string config labels (the
  series identity), labeled timings in one declared unit, and optional
  bit-identity evidence (``digest`` / ``bit_identical``).
- :func:`migrate_bench_payload` — the shim that upgrades the legacy
  payload shapes already on disk (``ScalingStudy.to_json()`` rows,
  the executor-backend ``kernels`` map, the ``*_sec``/``*_seconds``
  overhead gates) into schema v1, so history never starts empty.
- :func:`append_history` / :func:`load_history` — an append-only
  ``history.jsonl`` store (one record per line, timestamped and
  git-SHA-stamped by the campaign runner) whose loader tolerates
  malformed and legacy lines instead of crashing on them.
- :func:`analyze_trends` — compares the latest point of every
  ``(workload, config, timing label)`` series against a rolling
  baseline (median of the preceding window) and emits severity-ranked
  :class:`Finding` rows: lost bit-identity is critical, >10% slowdowns
  are major/minor by magnitude, overhead-gate drift is tracked from
  the ``ratio``/``threshold`` fields the overhead benches record.
- :func:`render_trends` — the deterministic markdown report
  (regression summary, per-workload sparkline trend tables, campaign
  coverage matrix) written to ``benchmarks/out/TRENDS.md``. Given the
  same history, repeated renders are bit-identical.

The campaign runner in ``tools/trials/`` drives all of this; see
docs/trials.md for the matrix, the baseline policy, and how to read
the report.
"""

from __future__ import annotations

import hashlib
import json
import math
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "make_record",
    "validate_bench_payload",
    "migrate_bench_payload",
    "load_bench_file",
    "load_bench_dir",
    "append_history",
    "history_segments",
    "load_history",
    "result_digest",
    "Finding",
    "analyze_trends",
    "sparkline",
    "render_trends",
]

#: Version stamped into every record this module writes.
BENCH_SCHEMA_VERSION = 1

#: Severity rank used to sort findings (lower sorts first).
_SEVERITY_RANK = {"critical": 0, "major": 1, "minor": 2}

#: Unicode eighth-blocks used by :func:`sparkline`.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _is_finite_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


@dataclass(frozen=True)
class BenchRecord:
    """One normalized benchmark measurement (schema v1).

    ``config`` and ``timings`` are stored as sorted tuples so records
    are hashable and their JSON form is canonical; use :meth:`config_dict`
    / :meth:`timings_dict` for mapping views. ``extra`` carries the
    original payload fields the schema does not interpret (scaling rows,
    metrics snapshots, gate thresholds) and is excluded from equality.
    """

    workload: str
    config: tuple[tuple[str, str], ...] = ()
    timings: tuple[tuple[str, float], ...] = ()
    unit: str = "seconds"
    schema_version: int = BENCH_SCHEMA_VERSION
    digest: str | None = None
    bit_identical: bool | None = None
    timestamp: str | None = None
    git_sha: str | None = None
    source: str = ""
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def config_label(self) -> str:
        """The series identity: ``"backend=thread,seed=0"`` (``"default"`` when bare)."""
        if not self.config:
            return "default"
        return ",".join(f"{k}={v}" for k, v in self.config)

    @property
    def series_key(self) -> tuple[str, str]:
        """``(workload, config_label)`` — what trend analysis groups by."""
        return (self.workload, self.config_label)

    def config_dict(self) -> dict[str, str]:
        """Mapping view of the config labels."""
        return dict(self.config)

    def timings_dict(self) -> dict[str, float]:
        """Mapping view of the labeled timings."""
        return dict(self.timings)

    @property
    def total_seconds(self) -> float:
        """The headline time: the ``total`` label when present, else the sum."""
        timings = self.timings_dict()
        if "total" in timings:
            return timings["total"]
        return sum(timings.values())

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict (the canonical on-disk form)."""
        payload: dict[str, Any] = {
            "schema_version": self.schema_version,
            "workload": self.workload,
            "config": self.config_dict(),
            "unit": self.unit,
            "timings": self.timings_dict(),
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        if self.bit_identical is not None:
            payload["bit_identical"] = self.bit_identical
        if self.timestamp is not None:
            payload["timestamp"] = self.timestamp
        if self.git_sha is not None:
            payload["git_sha"] = self.git_sha
        if self.source:
            payload["source"] = self.source
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any], *, source: str = "") -> "BenchRecord":
        """Parse a schema-v1 payload; raises ``ValueError`` listing every problem."""
        problems = validate_bench_payload(payload)
        if problems:
            raise ValueError(
                f"invalid bench payload ({source or 'unnamed'}): " + "; ".join(problems)
            )
        return cls(
            workload=payload["workload"],
            config=tuple(sorted((str(k), str(v)) for k, v in payload["config"].items())),
            timings=tuple(sorted((str(k), float(v)) for k, v in payload["timings"].items())),
            unit=payload["unit"],
            schema_version=payload["schema_version"],
            digest=payload.get("digest"),
            bit_identical=payload.get("bit_identical"),
            timestamp=payload.get("timestamp"),
            git_sha=payload.get("git_sha"),
            source=payload.get("source", source),
            extra=dict(payload.get("extra", {})),
        )


def make_record(
    workload: str,
    *,
    timings: Mapping[str, float],
    config: Mapping[str, Any] | None = None,
    unit: str = "seconds",
    digest: str | None = None,
    bit_identical: bool | None = None,
    timestamp: str | None = None,
    git_sha: str | None = None,
    source: str = "",
    extra: Mapping[str, Any] | None = None,
) -> BenchRecord:
    """Build a validated :class:`BenchRecord` (config values stringified)."""
    record = BenchRecord(
        workload=workload,
        config=tuple(sorted((str(k), str(v)) for k, v in (config or {}).items())),
        timings=tuple(sorted((str(k), float(v)) for k, v in timings.items())),
        unit=unit,
        digest=digest,
        bit_identical=bit_identical,
        timestamp=timestamp,
        git_sha=git_sha,
        source=source,
        extra=dict(extra or {}),
    )
    problems = validate_bench_payload(record.to_json())
    if problems:
        raise ValueError(f"invalid bench record {workload!r}: " + "; ".join(problems))
    return record


def validate_bench_payload(payload: Any) -> list[str]:
    """All schema-v1 problems with ``payload`` (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return [f"payload must be an object, got {type(payload).__name__}"]
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        problems.append(f"schema_version must be {BENCH_SCHEMA_VERSION}, got {version!r}")
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        problems.append(f"workload must be a non-empty string, got {workload!r}")
    config = payload.get("config")
    if not isinstance(config, Mapping):
        problems.append(f"config must be an object, got {type(config).__name__}")
    else:
        for k, v in config.items():
            if not isinstance(k, str) or not isinstance(v, str):
                problems.append(f"config entries must be string->string, got {k!r}={v!r}")
    unit = payload.get("unit")
    if not isinstance(unit, str) or not unit:
        problems.append(f"unit must be a non-empty string, got {unit!r}")
    timings = payload.get("timings")
    if not isinstance(timings, Mapping):
        problems.append(f"timings must be an object, got {type(timings).__name__}")
    else:
        if not timings:
            problems.append("timings must not be empty")
        for k, v in timings.items():
            if not isinstance(k, str) or not k:
                problems.append(f"timing labels must be non-empty strings, got {k!r}")
            if not _is_finite_number(v) or v < 0:
                problems.append(f"timing {k!r} must be a finite number >= 0, got {v!r}")
    for key, kind in (("digest", str), ("timestamp", str), ("git_sha", str), ("source", str)):
        if key in payload and not isinstance(payload[key], kind):
            problems.append(f"{key} must be a string, got {payload[key]!r}")
    if "bit_identical" in payload and not isinstance(payload["bit_identical"], bool):
        problems.append(f"bit_identical must be a bool, got {payload['bit_identical']!r}")
    if "extra" in payload and not isinstance(payload["extra"], Mapping):
        problems.append(f"extra must be an object, got {type(payload['extra']).__name__}")
    return problems


# ----------------------------------------------------------------------
# legacy migration
# ----------------------------------------------------------------------

#: Scalar payload keys that identify a series rather than measure it.
_CONFIG_HINT_KEYS = {
    "workers", "baseline_workers", "repeats", "threads", "seed", "lines",
    "local_combine", "n", "d", "k", "steps", "alpha", "tasks", "top_m",
    "cpu_count", "spill_budget_bytes",
}


def _legacy_timings(payload: Mapping[str, Any]) -> dict[str, float]:
    """Pull labeled seconds out of the legacy payload shapes."""
    timings: dict[str, float] = {}
    rows = payload.get("rows")
    if isinstance(rows, list):  # ScalingStudy.to_json() shape
        for row in rows:
            if isinstance(row, Mapping) and _is_finite_number(row.get("seconds")):
                timings[f"workers={row.get('workers')}"] = float(row["seconds"])
    kernels = payload.get("kernels")
    if isinstance(kernels, Mapping):  # executor-backend shoot-out shape
        for kernel, block in kernels.items():
            secs = block.get("seconds") if isinstance(block, Mapping) else None
            if isinstance(secs, Mapping):
                for backend, sec in secs.items():
                    if _is_finite_number(sec):
                        timings[f"{kernel}/{backend}"] = float(sec)
    for key, value in payload.items():  # overhead-gate shape
        if (key.endswith("_sec") or key.endswith("_seconds")) and _is_finite_number(value):
            label = key[: -len("_seconds")] if key.endswith("_seconds") else key[: -len("_sec")]
            timings[label] = float(value)
    return timings


def migrate_bench_payload(payload: Mapping[str, Any], *, source: str = "") -> dict[str, Any]:
    """Upgrade a legacy bench payload to a valid schema-v1 dict.

    Already-v1 payloads pass through unchanged. Legacy payloads (what
    ``benchmarks/out/`` held before the schema existed) get a workload
    name from ``name``/``bench``, config labels from their scalar
    identity keys, timings recovered from whichever legacy shape they
    used, and the whole original payload preserved under
    ``extra`` so no information is dropped. Raises ``ValueError`` when
    no timings can be recovered at all.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"bench payload must be an object, got {type(payload).__name__}")
    if payload.get("schema_version") == BENCH_SCHEMA_VERSION:
        return dict(payload)

    # Legacy files used "name"/"bench" for the identity; when present,
    # a string "workload" was a free-text description, not a key.
    workload = payload.get("name") or payload.get("bench")
    if not isinstance(workload, str) or not workload:
        workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ValueError(f"legacy bench payload has no name ({source or 'unnamed'})")

    config: dict[str, str] = {}
    for key in sorted(_CONFIG_HINT_KEYS & set(payload)):
        value = payload[key]
        if isinstance(value, (str, int, float, bool)):
            config[key] = str(value)
    # Some overhead benches nest their identity under a "workload" dict.
    nested = payload.get("workload")
    if isinstance(nested, Mapping):
        for k, v in nested.items():
            if isinstance(v, (str, int, float, bool)):
                config[str(k)] = str(v)

    timings = _legacy_timings(payload)
    if not timings:
        raise ValueError(
            f"legacy bench payload {workload!r} has no recoverable timings "
            f"({source or 'unnamed'})"
        )

    migrated: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "config": config,
        "unit": "seconds",
        "timings": timings,
        "extra": {"migrated_from": "legacy", **{k: v for k, v in payload.items()}},
    }
    if isinstance(payload.get("bit_identical"), bool):
        migrated["bit_identical"] = payload["bit_identical"]
    if source:
        migrated["source"] = source
    return migrated


def load_bench_file(path: str | Path) -> BenchRecord:
    """Load one ``BENCH_*.json`` file, migrating legacy shapes on the fly."""
    path = Path(path)
    payload = json.loads(path.read_text())
    migrated = migrate_bench_payload(payload, source=path.name)
    return BenchRecord.from_json(migrated, source=path.name)


def load_bench_dir(out_dir: str | Path) -> list[BenchRecord]:
    """All ``BENCH_*.json`` records under ``out_dir``, sorted by filename."""
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        return []
    return [load_bench_file(p) for p in sorted(out_dir.glob("BENCH_*.json"))]


# ----------------------------------------------------------------------
# history store
# ----------------------------------------------------------------------

def history_segments(path: str | Path) -> list[Path]:
    """Rotated segments for ``path``, oldest first (live file excluded).

    A segment is ``<stem>.<n><suffix>`` next to the live file —
    ``history.3.jsonl`` rotated after ``history.2.jsonl`` — so ordering
    by ``n`` is chronological.
    """
    path = Path(path)
    segments: list[tuple[int, Path]] = []
    for candidate in path.parent.glob(f"{path.stem}.*{path.suffix}"):
        tag = candidate.name[len(path.stem) + 1 : len(candidate.name) - len(path.suffix)]
        if tag.isdigit():
            segments.append((int(tag), candidate))
    return [p for _n, p in sorted(segments)]


def append_history(
    path: str | Path, records: Iterable[BenchRecord], *, max_bytes: int | None = None,
    max_segments: int | None = None,
) -> int:
    """Append records to the JSONL history file; returns the count written.

    With ``max_bytes``, the live file is size-bounded: when this append
    would push it past the bound, the current contents first rotate to
    the next ``<stem>.<n><suffix>`` segment (see
    :func:`history_segments`) and the live file restarts empty —
    append-only history without an ever-growing single file.
    ``max_segments`` additionally prunes the oldest rotated segments
    beyond that count (None keeps everything).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(r.to_json(), sort_keys=True) for r in records]
    if not lines:
        return 0
    payload = "\n".join(lines) + "\n"
    if max_bytes is not None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        live = path.stat().st_size if path.exists() else 0
        if live > 0 and live + len(payload) > max_bytes:
            segments = history_segments(path)
            next_n = 1 if not segments else int(segments[-1].stem.rsplit(".", 1)[1]) + 1
            path.rename(path.with_name(f"{path.stem}.{next_n}{path.suffix}"))
            if max_segments is not None:
                for stale in history_segments(path)[: -max_segments or None]:
                    stale.unlink()
    with path.open("a") as fh:
        fh.write(payload)
    return len(lines)


def load_history(path: str | Path) -> tuple[list[BenchRecord], int]:
    """Load the history tolerantly: ``(records, skipped_lines)``.

    Spans every rotated segment (oldest first) before the live file, so
    rotation is invisible to readers. Lines that are not JSON, not
    objects, or not salvageable even by the legacy migration shim are
    counted and skipped, never fatal — a corrupt line must not take
    down the whole trajectory.
    """
    path = Path(path)
    records: list[BenchRecord] = []
    skipped = 0
    for part in [*history_segments(path), path]:
        if not part.exists():
            continue
        for lineno, line in enumerate(part.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                migrated = migrate_bench_payload(payload, source=f"{part.name}:{lineno}")
                records.append(BenchRecord.from_json(migrated, source=f"{part.name}:{lineno}"))
            except (ValueError, TypeError):
                skipped += 1
    return records, skipped


def result_digest(value: Any) -> str:
    """A stable sha256 fingerprint of a workload result, for bit-identity.

    Canonicalizes the common result shapes (numpy arrays by dtype,
    shape, and raw bytes; mappings by sorted items; dataclass-like
    objects via ``__dict__``) so the same numbers always hash the same.
    """
    h = hashlib.sha256()

    def feed(v: Any) -> None:
        if hasattr(v, "tobytes") and hasattr(v, "dtype"):  # numpy array
            h.update(f"ndarray:{v.dtype}:{v.shape}:".encode())
            h.update(v.tobytes())
        elif isinstance(v, Mapping):
            h.update(b"map:")
            for k in sorted(v, key=repr):
                h.update(repr(k).encode())
                feed(v[k])
        elif isinstance(v, (list, tuple)):
            h.update(f"seq:{len(v)}:".encode())
            for item in v:
                feed(item)
        elif isinstance(v, (str, int, bool)) or v is None:
            h.update(repr(v).encode())
        elif isinstance(v, float):
            h.update(v.hex().encode())
        elif hasattr(v, "__dict__"):
            h.update(f"obj:{type(v).__name__}:".encode())
            feed(vars(v))
        else:
            h.update(repr(v).encode())

    feed(value)
    return f"sha256:{h.hexdigest()}"


# ----------------------------------------------------------------------
# trend analysis
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One severity-ranked trend-analysis result.

    ``kind`` is ``"bit_identity"`` (critical: the latest digest differs
    from the series' previous digest, or the record self-reports
    ``bit_identical=False``), ``"slowdown"`` (the latest time exceeds
    the rolling baseline by more than the threshold), or
    ``"overhead_drift"`` (an overhead-gate series whose ratio crossed,
    or is drifting toward, its recorded threshold).
    """

    severity: str
    kind: str
    workload: str
    config: str
    detail: str
    ratio: float | None = None

    @property
    def sort_key(self) -> tuple[int, str, str, str]:
        """Severity first, then stable lexicographic order."""
        return (_SEVERITY_RANK.get(self.severity, 99), self.workload, self.config, self.kind)


def _series(records: Iterable[BenchRecord]) -> dict[tuple[str, str], list[BenchRecord]]:
    """Group records by ``(workload, config_label)`` preserving history order."""
    out: dict[tuple[str, str], list[BenchRecord]] = {}
    for record in records:
        out.setdefault(record.series_key, []).append(record)
    return out


def _slowdown_findings(
    key: tuple[str, str],
    points: list[BenchRecord],
    *,
    baseline_window: int,
    slowdown_threshold: float,
) -> list[Finding]:
    workload, config = key
    findings: list[Finding] = []
    latest = points[-1]
    history = points[:-1]

    # Per timing label: a regression in one backend/kernel must not be
    # diluted by the others summed into a total.
    for label, seconds in latest.timings:
        prior = [p.timings_dict()[label] for p in history[-baseline_window:]
                 if label in p.timings_dict()]
        if not prior:
            continue
        baseline = statistics.median(prior)
        if baseline <= 0:
            continue
        ratio = seconds / baseline
        if ratio > 1.0 + slowdown_threshold:
            severity = "major" if ratio >= 1.25 else "minor"
            where = config if label == "total" else f"{config} [{label}]"
            findings.append(Finding(
                severity=severity,
                kind="slowdown",
                workload=workload,
                config=where,
                detail=(
                    f"{seconds:.6f}s vs rolling baseline {baseline:.6f}s "
                    f"({ratio:.2f}x, threshold {1.0 + slowdown_threshold:.2f}x)"
                ),
                ratio=ratio,
            ))
    return findings


def _bit_identity_findings(key: tuple[str, str], points: list[BenchRecord]) -> list[Finding]:
    workload, config = key
    latest = points[-1]
    findings: list[Finding] = []
    if latest.bit_identical is False:
        findings.append(Finding(
            severity="critical",
            kind="bit_identity",
            workload=workload,
            config=config,
            detail="record self-reports bit_identical=false",
        ))
    if latest.digest is not None:
        previous = [p.digest for p in points[:-1] if p.digest is not None]
        if previous and previous[-1] != latest.digest:
            findings.append(Finding(
                severity="critical",
                kind="bit_identity",
                workload=workload,
                config=config,
                detail=(
                    f"result digest changed: {previous[-1][:18]}… -> {latest.digest[:18]}…"
                ),
            ))
    return findings


def _overhead_findings(
    key: tuple[str, str], points: list[BenchRecord], *, baseline_window: int
) -> list[Finding]:
    workload, config = key
    latest = points[-1]
    ratio = latest.extra.get("ratio")
    threshold = latest.extra.get("threshold")
    if not (_is_finite_number(ratio) and _is_finite_number(threshold) and threshold > 1.0):
        return []
    if ratio >= threshold:
        return [Finding(
            severity="major",
            kind="overhead_drift",
            workload=workload,
            config=config,
            detail=f"overhead ratio {ratio:.3f}x breached its gate ({threshold:.2f}x)",
            ratio=float(ratio),
        )]
    prior = [p.extra["ratio"] for p in points[:-1][-baseline_window:]
             if _is_finite_number(p.extra.get("ratio"))]
    headroom = threshold - 1.0
    if prior and ratio - statistics.median(prior) > 0.5 * headroom:
        return [Finding(
            severity="minor",
            kind="overhead_drift",
            workload=workload,
            config=config,
            detail=(
                f"overhead ratio drifted to {ratio:.3f}x "
                f"(baseline {statistics.median(prior):.3f}x, gate {threshold:.2f}x)"
            ),
            ratio=float(ratio),
        )]
    return []


def analyze_trends(
    records: Iterable[BenchRecord],
    *,
    baseline_window: int = 5,
    slowdown_threshold: float = 0.10,
) -> list[Finding]:
    """Severity-ranked findings for the latest point of every series.

    The baseline policy: each ``(workload, config)`` series' latest
    record is compared against the median of up to ``baseline_window``
    preceding records (per timing label). Series with a single point
    have no baseline and produce no findings. The output order is
    deterministic — severity rank, then workload/config/kind — so the
    rendered report is bit-identical across repeated runs on the same
    history.
    """
    if baseline_window < 1:
        raise ValueError(f"baseline_window must be >= 1, got {baseline_window}")
    if slowdown_threshold <= 0:
        raise ValueError(f"slowdown_threshold must be > 0, got {slowdown_threshold}")
    findings: list[Finding] = []
    for key, points in _series(records).items():
        if len(points) < 2:
            continue
        findings.extend(_bit_identity_findings(key, points))
        findings.extend(_slowdown_findings(
            key, points,
            baseline_window=baseline_window,
            slowdown_threshold=slowdown_threshold,
        ))
        findings.extend(_overhead_findings(key, points, baseline_window=baseline_window))
    return sorted(findings, key=lambda f: f.sort_key)


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------

def sparkline(values: Iterable[float]) -> str:
    """Render a series as unicode eighth-blocks (``▁▃▇█``), min-max scaled."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo <= 0:
        return _SPARK_BLOCKS[0] * len(vals)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((v - lo) / (hi - lo) * top + 0.5))] for v in vals
    )


def _coverage_rows(series: dict[tuple[str, str], list[BenchRecord]]) -> list[str]:
    """The campaign coverage matrix: config-key values covered per workload."""
    per_workload: dict[str, list[BenchRecord]] = {}
    for (workload, _), points in sorted(series.items()):
        per_workload.setdefault(workload, []).extend(points)
    keys: list[str] = sorted({
        k for points in per_workload.values() for p in points for k, _ in p.config
    })
    header = "| workload | runs | " + " | ".join(keys) + " |" if keys else "| workload | runs |"
    rule = "|---" * (2 + len(keys)) + "|"
    rows = [header, rule]
    for workload, points in sorted(per_workload.items()):
        cells = []
        for key in keys:
            values = sorted({dict(p.config).get(key) for p in points} - {None})
            cells.append(",".join(values) if values else "—")
        tail = (" " + " | ".join(cells) + " |") if keys else ""
        rows.append(f"| {workload} | {len(points)} |{tail}")
    return rows


def render_trends(
    records: Iterable[BenchRecord],
    *,
    findings: list[Finding] | None = None,
    skipped: int = 0,
    baseline_window: int = 5,
    slowdown_threshold: float = 0.10,
    title: str = "Performance trends",
) -> str:
    """The TRENDS.md report: regressions, per-workload trends, coverage.

    Pure function of the history — no wall clock, no environment — so
    repeated renders over the same records are bit-identical.
    """
    records = list(records)
    if findings is None:
        findings = analyze_trends(
            records,
            baseline_window=baseline_window,
            slowdown_threshold=slowdown_threshold,
        )
    series = _series(records)
    shas = [r.git_sha for r in records if r.git_sha]
    stamps = [r.timestamp for r in records if r.timestamp]

    lines = [f"# {title}", ""]
    span = ""
    if stamps:
        span = f" spanning {min(stamps)} → {max(stamps)}"
    if shas:
        span += f" ({shas[0]} → {shas[-1]})"
    lines.append(
        f"{len(records)} records across {len(series)} (workload, config) series{span}."
    )
    if skipped:
        lines.append(f"{skipped} malformed history line{'s' if skipped != 1 else ''} skipped.")
    lines.append("")

    lines.append("## Regressions")
    lines.append("")
    if findings:
        lines.append("| severity | kind | workload | config | detail |")
        lines.append("|---|---|---|---|---|")
        for f in findings:
            lines.append(
                f"| {f.severity} | {f.kind} | {f.workload} | {f.config} | {f.detail} |"
            )
    else:
        lines.append("No regressions detected against the rolling baseline.")
    lines.append("")

    lines.append("## Per-workload trends")
    lines.append("")
    lines.append(
        f"Baseline: median of the preceding {baseline_window} runs per series; "
        f"flagged above {1.0 + slowdown_threshold:.2f}x."
    )
    lines.append("")
    lines.append("| workload | config | runs | latest s | baseline s | delta | trend |")
    lines.append("|---|---|---|---|---|---|---|")
    for (workload, config), points in sorted(series.items()):
        totals = [p.total_seconds for p in points]
        latest = totals[-1]
        prior = totals[:-1][-baseline_window:]
        if prior:
            baseline = statistics.median(prior)
            delta = f"{(latest / baseline - 1.0) * 100.0:+.1f}%" if baseline > 0 else "n/a"
            base_text = f"{baseline:.6f}"
        else:
            base_text, delta = "—", "new"
        lines.append(
            f"| {workload} | {config} | {len(points)} | {latest:.6f} | "
            f"{base_text} | {delta} | {sparkline(totals[-16:])} |"
        )
    lines.append("")

    lines.append("## Campaign coverage")
    lines.append("")
    if series:
        lines.extend(_coverage_rows(series))
    else:
        lines.append("No history yet — run `python tools/trials` to start the trajectory.")
    lines.append("")
    return "\n".join(lines)
