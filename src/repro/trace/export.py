"""Exporters: Chrome trace-event JSON, plain-text rank timelines, summaries.

Three ways to look at one recorded run:

- :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto JSON
  object format. Each scope becomes a named thread row, spans become
  complete (``"X"``) events, instants stay instants; the logical-clock
  ``seq`` rides along in ``args`` so the deterministic order is visible
  next to the wall-clock one.
- :func:`render_timeline` — an offline per-scope Gantt chart in plain
  text, for terminals and test output (the "read the rank timeline"
  skill docs/observability.md teaches).
- the metrics table lives in :func:`repro.trace.metrics.format_metrics_table`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.trace.tracer import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["to_chrome_trace", "write_chrome_trace", "render_timeline"]


def _as_events(source: "Tracer | Sequence[TraceEvent]") -> list[TraceEvent]:
    if isinstance(source, Tracer):
        return source.events()
    return list(source)


def to_chrome_trace(source: "Tracer | Sequence[TraceEvent]") -> dict[str, Any]:
    """Convert a tracer (or event list) to the Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest recorded event
    (the viewer wants small positive numbers, not raw ``perf_counter``
    values). One process (``pid=0``); each scope maps to a stable
    ``tid`` in sorted-scope order, labeled via ``thread_name`` metadata
    events. Serialize with ``json.dumps`` or :func:`write_chrome_trace`.
    """
    events = _as_events(source)
    scopes = sorted({e.scope for e in events})
    tids = {scope: tid for tid, scope in enumerate(scopes)}
    origin = min((e.start for e in events), default=0.0)

    trace_events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tids[scope],
            "args": {"name": scope},
        }
        for scope in scopes
    ]
    for e in sorted(events, key=lambda e: (e.scope, e.seq)):
        row: dict[str, Any] = {
            "name": e.name,
            "cat": e.category,
            "ph": e.phase,
            "ts": (e.start - origin) * 1e6,
            "pid": 0,
            "tid": tids[e.scope],
            "args": {**dict(e.args), "seq": e.seq},
        }
        if e.phase == "X":
            row["dur"] = e.duration * 1e6
        else:
            row["s"] = "t"  # instant scoped to its thread
        trace_events.append(row)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: "Tracer | Sequence[TraceEvent]", path: str | Path) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path.

    Load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(source)))
    return path


def render_timeline(
    source: "Tracer | Sequence[TraceEvent]",
    *,
    width: int = 72,
    categories: Sequence[str] | None = None,
) -> str:
    """Plain-text Gantt chart: one row per scope, time left to right.

    Spans paint their extent with the first letter of their name
    (overlapping spans: the later-starting span wins the cell); instants
    draw ``!``. ``categories`` filters which events are drawn. The
    footer lists the legend mapping letters back to event names.

    >>> from repro.trace import Tracer
    >>> t = Tracer()
    >>> with t.span("work", scope="rank0"):
    ...     pass
    >>> print(render_timeline(t))  # doctest: +SKIP
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    events = _as_events(source)
    if categories is not None:
        wanted = set(categories)
        events = [e for e in events if e.category in wanted]
    if not events:
        return "(no events)"

    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    span = max(t1 - t0, 1e-12)
    scopes = sorted({e.scope for e in events})
    label_w = max(len(s) for s in scopes)

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) / span * width)))

    legend: dict[str, str] = {}
    lines = [
        f"timeline: {len(events)} events over {span * 1e3:.3f} ms "
        f"({len(scopes)} scope{'s' if len(scopes) != 1 else ''})"
    ]
    for scope in scopes:
        row = [" "] * width
        # Paint in (seq) order so later spans overwrite earlier ones.
        for e in sorted((e for e in events if e.scope == scope), key=lambda e: e.seq):
            if e.phase == "X":
                mark = e.name[0] if e.name else "?"
                legend.setdefault(mark, e.name)
                for c in range(col(e.start), col(e.end) + 1):
                    row[c] = mark
            else:
                legend.setdefault("!", "instant")
                row[col(e.start)] = "!"
        lines.append(f"{scope:>{label_w}} |{''.join(row)}|")
    lines.append(
        "legend: " + "  ".join(f"{mark}={name}" for mark, name in sorted(legend.items()))
    )
    return "\n".join(lines)
