"""The tracer: structured span/instant events with a deterministic logical clock.

Observability for parallel programs has two halves the repo previously
kept apart: *what happened* (message counts, shuffle volumes) and *when*
(wall-clock timelines showing imbalance and waiting). A
:class:`Tracer` records both at once. Every event carries

- a wall-clock ``start``/``duration`` (``time.perf_counter`` seconds),
  for timelines and Chrome trace viewing, and
- a **logical clock**: a per-scope sequence number assigned in program
  order. Wall-clock times differ run to run; the logical sequence of a
  deterministic program does not. :meth:`Tracer.logical_sequence`
  returns the canonical ``(scope, seq, name, category, phase)`` tuple —
  bit-identical across runs at a fixed seed/size, the same discipline as
  the repo's reproducible PRNG streams and seeded fault plans.

A *scope* is one deterministic lane of execution — an SPMD rank
(``rank3``), a Spark partition (``spark.p2``), or the driver thread
(``main``). Scopes are thread-local and inherited: :func:`run_spmd`
enters ``tracer.scope("rank<r>")`` around each rank function, so any
instrumented workload code running on that rank lands in the rank's
lane without plumbing a tracer through every call.

The default tracer is **disabled** (:data:`get_tracer` returns a
module-level no-op). Instrumentation sites are gated on
``tracer.enabled`` or use :meth:`Tracer.span`, whose disabled path
returns one shared no-op context manager — the overhead budget is held
under 5% by ``benchmarks/test_trace_overhead.py``, exactly like the
fault layer's hot-path gate.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.trace.metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: Default scope for events recorded outside any ``tracer.scope(...)``.
DEFAULT_SCOPE = "main"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a completed span (``phase="X"``) or an instant (``"i"``).

    ``start`` is in ``time.perf_counter`` seconds (monotonic, arbitrary
    origin); ``seq`` is the event's position on its scope's logical
    clock, assigned at span *entry* so nesting preserves program order.
    ``args`` is a sorted tuple of (key, value) pairs, hashable whenever
    the values are.
    """

    name: str
    category: str
    scope: str
    phase: str
    start: float
    duration: float
    seq: int
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def end(self) -> float:
        """Wall-clock end of the event (== start for instants)."""
        return self.start + self.duration


class _NoopSpan:
    """Shared do-nothing span for disabled tracers (reusable, stateless)."""

    __slots__ = ()
    duration = 0.0
    start = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span: seq taken at entry, event recorded at exit.

    The event is recorded even when the body raises — the exception type
    is appended to ``args`` as ``error`` so a crash is visible on the
    timeline at the operation where it fired.
    """

    __slots__ = ("_tracer", "_name", "_category", "_scope", "_args", "_seq", "start", "duration")

    def __init__(self, tracer: "Tracer", name: str, category: str, scope: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._scope = scope
        self._args = args
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "_Span":
        self._seq = self._tracer._next_seq(self._scope)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: type | None, *exc: object) -> None:
        self.duration = time.perf_counter() - self.start
        args = dict(self._args)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        self._tracer._append(
            TraceEvent(
                name=self._name,
                category=self._category,
                scope=self._scope,
                phase="X",
                start=self.start,
                duration=self.duration,
                seq=self._seq,
                args=tuple(sorted(args.items())),
            )
        )


class Tracer:
    """Process-wide, thread-safe span/instant recorder plus metrics registry.

    One tracer observes one run: pass it to ``run_spmd(..., tracer=...)``
    or install it as the process default with :func:`use_tracer`. All
    mutators are safe to call from any rank/worker thread.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._seqs: dict[str, int] = {}
        self._local = threading.local()
        #: Counters/gauges/histograms recorded alongside the events.
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """False for the no-op default; instrumentation gates on this."""
        return self._enabled

    def clear(self) -> None:
        """Drop all events, logical clocks, and metrics (between runs)."""
        with self._lock:
            self._events.clear()
            self._seqs.clear()
        self.metrics.clear()

    # ------------------------------------------------------------------
    # scopes (thread-local lanes)
    # ------------------------------------------------------------------
    @property
    def current_scope(self) -> str:
        """The calling thread's scope (``"main"`` outside any ``scope()``)."""
        return getattr(self._local, "scope", None) or DEFAULT_SCOPE

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Route this thread's events to lane ``name`` for the block."""
        prev = getattr(self._local, "scope", None)
        self._local.scope = name
        try:
            yield
        finally:
            self._local.scope = prev

    def _next_seq(self, scope: str) -> int:
        with self._lock:
            seq = self._seqs.get(scope, 0)
            self._seqs[scope] = seq + 1
            return seq

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, *, category: str = "app", scope: str | None = None, **args: Any):
        """A context manager timing one operation as a complete event.

        Disabled tracers return a shared no-op, so unconditional
        ``with tracer.span(...):`` at a call site costs one method call
        on the hot path.
        """
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, category, scope or self.current_scope, args)

    def instant(self, name: str, *, category: str = "app", scope: str | None = None, **args: Any) -> None:
        """Record a zero-duration event (a message post, a fault firing)."""
        if not self._enabled:
            return
        scope = scope or self.current_scope
        self._append(
            TraceEvent(
                name=name,
                category=category,
                scope=scope,
                phase="i",
                start=time.perf_counter(),
                duration=0.0,
                seq=self._next_seq(scope),
                args=tuple(sorted(args.items())),
            )
        )

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        category: str = "app",
        scope: str | None = None,
        **args: Any,
    ) -> None:
        """Record an already-measured span (for pre-timed operations)."""
        if not self._enabled:
            return
        scope = scope or self.current_scope
        self._append(
            TraceEvent(
                name=name,
                category=category,
                scope=scope,
                phase="X",
                start=start,
                duration=duration,
                seq=self._next_seq(scope),
                args=tuple(sorted(args.items())),
            )
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """A snapshot copy of all recorded events (append order)."""
        with self._lock:
            return list(self._events)

    def logical_sequence(self) -> tuple[tuple[str, int, str, str, str], ...]:
        """The canonical event order: ``(scope, seq, name, category, phase)``.

        Sorted by (scope, seq) — each scope's logical clock is assigned
        in that lane's program order, so for a deterministic workload
        this tuple is **bit-identical across runs** regardless of how
        the OS interleaved the threads. Wall-clock fields and args are
        deliberately excluded.
        """
        with self._lock:
            rows = [(e.scope, e.seq, e.name, e.category, e.phase) for e in self._events]
        return tuple(sorted(rows))

    def scopes(self) -> list[str]:
        """All scopes that recorded at least one event, sorted."""
        with self._lock:
            return sorted({e.scope for e in self._events})

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Tracer({state}, {len(self)} events)"


#: The module-level default: a disabled tracer whose every hook is a no-op.
NULL_TRACER = Tracer(enabled=False)

_active = NULL_TRACER
_active_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide active tracer (the disabled :data:`NULL_TRACER` by default)."""
    return _active


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer
        return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`: install for the block, restore after.

    >>> from repro.trace import Tracer, use_tracer
    >>> with use_tracer(Tracer()) as t:
    ...     pass  # instrumented code here records into t
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
