"""Deterministic schedule exploration: cooperative scheduling of thread teams.

Python's thread scheduler is an adversary you cannot subpoena: a racy
program may run correctly for a million GIL-timed executions and fail
on the next. This module replaces the OS schedule with a *cooperative*
one — instrumented threads hand the single run token to each other at
preemption points (annotated memory accesses, lock operations,
barriers) and a **chooser** picks which runnable thread goes next:

- :class:`RandomChooser` draws choices from a ``repro.rng.lcg`` stream,
  so schedule ``(seed, schedule_id)`` is one block-split LCG stream
  (the same idiom as the fault plans) and every interleaving replays
  **bit-identically** from its two integers;
- :class:`PrefixChooser` replays a recorded choice prefix and then
  falls back to first-runnable, which is what the bounded
  depth-first :func:`explore_dfs` mode uses to systematically
  enumerate interleavings around each divergence point.

:func:`explore` runs a body under ``schedules`` seeded random
interleavings and aggregates the :class:`~repro.sanitizer.hb.RaceReport`
findings; :func:`run_schedule` replays exactly one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.rng.lcg import KNUTH_LCG, LinearCongruential
from repro.sanitizer.hb import RaceReport
from repro.util.validation import require_nonnegative_int, require_positive_int

__all__ = [
    "ScheduleDeadlockError",
    "CooperativeScheduler",
    "RandomChooser",
    "PrefixChooser",
    "ScheduleOutcome",
    "ExplorationResult",
    "schedule_stream",
    "run_schedule",
    "explore",
    "explore_dfs",
]

#: Spacing between schedule streams on the shared LCG sequence — far
#: larger than any schedule's decision count, so streams never overlap
#: within drawn prefixes (the block-split contract tests/rng pins).
SCHEDULE_STREAM_SPACING = 1 << 40

#: Defensive ceiling on how long a thread waits for its turn before the
#: run is declared stalled (a scheduler bug, not a workload deadlock).
_STALL_TIMEOUT_S = 120.0


class ScheduleDeadlockError(RuntimeError):
    """No runnable thread remains but not every thread has finished.

    Under cooperative scheduling this is a *real* deadlock of the
    explored program on this schedule (e.g. a barrier some team member
    never reaches), reported deterministically instead of hanging.
    """


class RandomChooser:
    """Choices drawn from a seeded, fast-forwardable LCG stream.

    One raw draw per decision point — including forced ones with a
    single runnable thread — keeps the stream position a pure function
    of the decision index, which is what makes replay exact.
    """

    def __init__(self, stream: LinearCongruential) -> None:
        self._stream = stream

    def __call__(self, num_enabled: int, step: int) -> int:
        # Choose via the high bits (the uniform draw): the low-order bits
        # of a power-of-two-modulus LCG have tiny periods — bit 0 simply
        # alternates — so ``raw % n`` would collapse every stream onto
        # one alternating schedule.
        draw = int(self._stream.next_uniform() * num_enabled)
        return draw if draw < num_enabled else num_enabled - 1

    def __repr__(self) -> str:
        return f"RandomChooser(position={self._stream.position})"


class PrefixChooser:
    """Replay a recorded choice prefix, then take the first runnable thread."""

    def __init__(self, prefix: tuple[int, ...] = ()) -> None:
        self.prefix = tuple(prefix)

    def __call__(self, num_enabled: int, step: int) -> int:
        if step < len(self.prefix):
            return min(self.prefix[step], num_enabled - 1)
        return 0

    def __repr__(self) -> str:
        return f"PrefixChooser(prefix={self.prefix})"


class CooperativeScheduler:
    """Serializes registered threads onto one deterministic interleaving.

    Exactly one registered thread holds the run token at any time. At
    every preemption point the holder re-enters the scheduler, the
    chooser picks the next thread from the *enabled* set (runnable, or
    blocked with a now-true predicate, in registration order), and the
    token moves. Unregistered threads (the driver, nested teams) are
    never scheduled and pass through every hook untouched.
    """

    _STARTING, _READY, _RUNNING, _BLOCKED, _DONE = range(5)

    def __init__(self, chooser: Callable[[int, int], int]) -> None:
        self._chooser = chooser
        self._cond = threading.Condition()
        self._state: dict[str, int] = {}
        self._order: dict[str, int] = {}
        self._predicates: dict[str, Callable[[], bool]] = {}
        self._pending: set[str] = set()
        self._current: str | None = None
        self._next_order = 0
        self._step = 0
        self._failure: BaseException | None = None
        #: One ``(num_enabled, choice)`` row per decision, in order.
        self.trace: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __contains__(self, tid: str) -> bool:
        with self._cond:
            return tid in self._state

    def add_team(self, tids: list[str]) -> None:
        """Register a team; dispatching waits until every member begins."""
        with self._cond:
            for tid in tids:
                self._state[tid] = self._STARTING
                self._order[tid] = self._next_order
                self._next_order += 1
                self._pending.add(tid)

    def remove_team(self, tids: list[str]) -> None:
        with self._cond:
            for tid in tids:
                self._state.pop(tid, None)
                self._order.pop(tid, None)
                self._predicates.pop(tid, None)
                self._pending.discard(tid)

    # ------------------------------------------------------------------
    # thread lifecycle (called from the registered threads themselves)
    # ------------------------------------------------------------------
    def thread_begin(self, tid: str) -> None:
        with self._cond:
            self._pending.discard(tid)
            self._state[tid] = self._READY
            if not self._pending and self._current is None:
                self._dispatch()
            self._wait_for_turn(tid)

    def thread_end(self, tid: str) -> None:
        with self._cond:
            self._state[tid] = self._DONE
            if self._current == tid:
                self._current = None
            self._dispatch()

    def yield_point(self, tid: str) -> None:
        """Hand the token back; the chooser decides who runs next (maybe us)."""
        with self._cond:
            if tid not in self._state:
                return
            self._state[tid] = self._READY
            if self._current == tid:
                self._current = None
            self._dispatch()
            self._wait_for_turn(tid)

    def block_until(self, tid: str, predicate: Callable[[], bool]) -> None:
        """Yield and stay unschedulable until ``predicate()`` becomes true."""
        with self._cond:
            if tid not in self._state:
                return
            self._state[tid] = self._BLOCKED
            self._predicates[tid] = predicate
            if self._current == tid:
                self._current = None
            self._dispatch()
            self._wait_for_turn(tid)

    # ------------------------------------------------------------------
    # dispatch (condition lock held)
    # ------------------------------------------------------------------
    def _enabled(self) -> list[str]:
        out = []
        for tid, state in self._state.items():
            if state == self._READY:
                out.append(tid)
            elif state == self._BLOCKED and self._predicates[tid]():
                out.append(tid)
        out.sort(key=self._order.__getitem__)
        return out

    def _dispatch(self) -> None:
        if self._failure is not None or self._pending or self._current is not None:
            return
        enabled = self._enabled()
        if not enabled:
            if any(s in (self._READY, self._BLOCKED) for s in self._state.values()):
                blocked = sorted(
                    (t for t, s in self._state.items() if s == self._BLOCKED),
                    key=self._order.__getitem__,
                )
                self._failure = ScheduleDeadlockError(
                    f"no runnable thread at step {self._step}: "
                    f"{blocked} blocked on unsatisfiable predicates "
                    "(a barrier or lock some team member never releases)"
                )
                self._cond.notify_all()
                raise self._failure
            self._cond.notify_all()  # all done: release the driver
            return
        choice = self._chooser(len(enabled), self._step)
        if not 0 <= choice < len(enabled):
            raise ValueError(
                f"chooser returned {choice} for {len(enabled)} enabled threads"
            )
        self.trace.append((len(enabled), choice))
        chosen = enabled[choice]
        self._predicates.pop(chosen, None)
        self._state[chosen] = self._RUNNING
        self._current = chosen
        self._step += 1
        self._cond.notify_all()

    def _wait_for_turn(self, tid: str) -> None:
        while self._current != tid and self._failure is None:
            if not self._cond.wait(timeout=_STALL_TIMEOUT_S):
                self._failure = ScheduleDeadlockError(
                    f"scheduler stalled waiting to run {tid!r}"
                )
                self._cond.notify_all()
                break
        if self._failure is not None:
            raise self._failure


# ----------------------------------------------------------------------
# exploration
# ----------------------------------------------------------------------

def schedule_stream(seed: int, schedule_id: int) -> LinearCongruential:
    """The choice stream for ``(seed, schedule_id)``: one block-split LCG.

    Stream ``k`` starts ``k * SCHEDULE_STREAM_SPACING`` draws into the
    seeded Knuth-MMIX sequence (an O(log n) jump), so schedules of one
    seed never share draws and any schedule is addressable in isolation.
    """
    require_nonnegative_int("schedule_id", schedule_id)
    return LinearCongruential(KNUTH_LCG, seed).jumped(schedule_id * SCHEDULE_STREAM_SPACING)


@dataclass(frozen=True)
class ScheduleOutcome:
    """One explored interleaving: its identity, findings, and choice trace."""

    schedule_id: int
    mode: str  # "random" | "dfs"
    seed: int | None  # None in dfs mode
    prefix: tuple[int, ...]  # dfs divergence prefix ("" in random mode)
    races: tuple[RaceReport, ...]
    choice_trace: tuple[tuple[int, int], ...]
    result: Any = field(compare=False, default=None)

    @property
    def steps(self) -> int:
        """Number of scheduling decisions taken."""
        return len(self.choice_trace)

    @property
    def choices(self) -> tuple[int, ...]:
        """Just the chosen indices (the replayable prefix for DFS)."""
        return tuple(c for _n, c in self.choice_trace)


class ExplorationResult:
    """Aggregate of one :func:`explore`/:func:`explore_dfs` campaign."""

    def __init__(self, mode: str, seed: int | None, outcomes: list[ScheduleOutcome]) -> None:
        self.mode = mode
        self.seed = seed
        self.outcomes = list(outcomes)

    @property
    def schedules_run(self) -> int:
        return len(self.outcomes)

    @property
    def race_free(self) -> bool:
        return all(not o.races for o in self.outcomes)

    @property
    def races(self) -> tuple[RaceReport, ...]:
        """Distinct races across all schedules (first sighting wins).

        Deduplicated by :attr:`RaceReport.location_signature`, so one
        racy source pair reported on fifty schedules is one finding.
        """
        seen: set[tuple] = set()
        out: list[RaceReport] = []
        for outcome in self.outcomes:
            for race in outcome.races:
                key = race.location_signature
                if key not in seen:
                    seen.add(key)
                    out.append(race)
        return tuple(out)

    def racy_schedules(self) -> tuple[ScheduleOutcome, ...]:
        return tuple(o for o in self.outcomes if o.races)

    def distinct_interleavings(self) -> int:
        """How many distinct choice traces the campaign actually explored."""
        return len({o.choice_trace for o in self.outcomes})

    def __repr__(self) -> str:
        return (
            f"ExplorationResult(mode={self.mode!r}, schedules={self.schedules_run}, "
            f"distinct={self.distinct_interleavings()}, races={len(self.races)})"
        )


def _run_with_chooser(
    body: Callable[[], Any], chooser: Callable[[int, int], int]
) -> tuple[tuple[RaceReport, ...], tuple[tuple[int, int], ...], Any]:
    # Local import: runtime builds schedulers from this module.
    from repro.sanitizer.runtime import Sanitizer, use_sanitizer

    sanitizer = Sanitizer(chooser=chooser)
    with use_sanitizer(sanitizer):
        result = body()
    return sanitizer.detector.races, tuple(sanitizer.scheduler.trace), result


def run_schedule(body: Callable[[], Any], *, seed: int = 0, schedule_id: int = 0) -> ScheduleOutcome:
    """Run ``body`` once under the ``(seed, schedule_id)`` interleaving.

    Re-running with the same two integers replays the identical
    interleaving — identical choice trace, identical race reports —
    which is the replay workflow a :class:`RaceReport` names.
    """
    races, trace, result = _run_with_chooser(
        body, RandomChooser(schedule_stream(seed, schedule_id))
    )
    return ScheduleOutcome(
        schedule_id=schedule_id,
        mode="random",
        seed=seed,
        prefix=(),
        races=races,
        choice_trace=trace,
        result=result,
    )


def explore(
    body: Callable[[], Any], *, schedules: int = 50, seed: int = 0
) -> ExplorationResult:
    """Run ``body`` under ``schedules`` seeded random interleavings.

    Random exploration is the workhorse mode: cheap, embarrassingly
    reproducible, and effective because most races need only one
    adverse ordering among a handful of preemption points.
    """
    require_positive_int("schedules", schedules)
    outcomes = [
        run_schedule(body, seed=seed, schedule_id=schedule_id)
        for schedule_id in range(schedules)
    ]
    return ExplorationResult("random", seed, outcomes)


def explore_dfs(
    body: Callable[[], Any], *, max_schedules: int = 64, max_depth: int | None = None
) -> ExplorationResult:
    """Bounded depth-first enumeration of interleavings.

    Starting from the first-runnable baseline, every decision point up
    to ``max_depth`` spawns the untaken alternatives as new schedule
    prefixes (depth-first), until ``max_schedules`` distinct
    interleavings have run. Exhaustive below the bound for small
    bodies; a systematic complement to :func:`explore` for larger ones.
    """
    require_positive_int("max_schedules", max_schedules)
    if max_depth is not None:
        require_positive_int("max_depth", max_depth)
    stack: list[tuple[int, ...]] = [()]
    seen: set[tuple[int, ...]] = set()
    outcomes: list[ScheduleOutcome] = []
    while stack and len(outcomes) < max_schedules:
        prefix = stack.pop()
        races, trace, result = _run_with_chooser(body, PrefixChooser(prefix))
        choices = tuple(c for _n, c in trace)
        if choices in seen:
            continue
        seen.add(choices)
        outcomes.append(
            ScheduleOutcome(
                schedule_id=len(outcomes),
                mode="dfs",
                seed=None,
                prefix=prefix,
                races=races,
                choice_trace=trace,
                result=result,
            )
        )
        horizon = len(trace) if max_depth is None else min(len(trace), max_depth)
        for i in range(len(prefix), horizon):
            num_enabled, taken = trace[i]
            for alternative in range(num_enabled):
                if alternative != taken:
                    stack.append(choices[:i] + (alternative,))
    return ExplorationResult("dfs", None, outcomes)
