"""Vector-clock happens-before race detection with per-cell shadow state.

The detector implements the classic happens-before discipline (the same
model TSan and FastTrack use): every logical thread carries a vector
clock; release/acquire pairs on locks, fork/join edges around thread
teams, and full barriers install ordering edges between the clocks; and
every *annotated* shared-memory access is checked against the cell's
shadow state (last write + pending reads). Two conflicting accesses —
same cell, at least one a write — that are not ordered by the
happens-before relation are a data race, reported as a
:class:`RaceReport` naming both accesses, their threads, and the
synchronization gap.

Detection is interleaving-independent: a race is flagged whenever the
*synchronization* fails to order the accesses, whether or not the
particular run happened to corrupt anything. That is what lets the
schedule explorer (:mod:`repro.sanitizer.schedule`) certify a rung of
the k-means ladder race-free from a bounded set of schedules instead of
hoping the GIL interleaves badly.

Thread identities are logical names (``"main"``, ``"r0:t1"`` for region
0's thread 1), not OS thread ids, so reports are stable run to run and
replay bit-identically at a fixed ``(seed, schedule_id)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = [
    "VectorClock",
    "MemoryAccess",
    "RaceReport",
    "RaceError",
    "HBDetector",
]

#: The logical thread every un-registered (driver) thread reports as.
MAIN_THREAD = "main"


class VectorClock:
    """A mutable vector clock: logical-thread name -> last-known clock value.

    Missing entries are implicitly 0. ``observes(thread, value)`` is the
    happens-before test this detector needs: has this clock's owner
    observed ``thread`` at or after ``value``?
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self._entries: dict[str, int] = dict(entries or {})

    def get(self, thread: str) -> int:
        return self._entries.get(thread, 0)

    def tick(self, thread: str) -> None:
        """Increment ``thread``'s component (its next event's timestamp)."""
        self._entries[thread] = self._entries.get(thread, 0) + 1

    def observes(self, thread: str, value: int) -> bool:
        """True iff this clock has seen ``thread`` advance to ``value``."""
        return self._entries.get(thread, 0) >= value

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum (the join of the happens-before lattice)."""
        for thread, value in other._entries.items():
            if self._entries.get(thread, 0) < value:
                self._entries[thread] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._entries)

    def snapshot(self) -> tuple[tuple[str, int], ...]:
        """Sorted immutable view (for reports)."""
        return tuple(sorted(self._entries.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._entries.items()))
        return f"VectorClock({{{inner}}})"


@dataclass(frozen=True)
class MemoryAccess:
    """One annotated access to a shared cell, as remembered by the shadow state."""

    thread: str
    kind: str  # "read" | "write"
    label: str  # source-level location hint, e.g. "kmeans.openmp.racy.sums"
    clock: int  # the accessing thread's own clock component at the access
    op_index: int  # the access's ordinal among the thread's annotated ops

    def describe(self) -> str:
        return f"{self.kind} of {self.label!r} by {self.thread} (clock {self.thread}@{self.clock})"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, happens-before-unordered accesses to one cell.

    ``first`` is the access already in the shadow state (it executed
    earlier in this schedule), ``second`` the access that exposed the
    race. ``gap`` names the missing synchronization: which thread failed
    to observe which clock value.
    """

    cell: str
    first: MemoryAccess
    second: MemoryAccess
    gap: str

    @property
    def signature(self) -> tuple:
        """Stable identity of the race within one schedule (for replay tests)."""
        return (
            self.cell,
            self.first.thread,
            self.first.kind,
            self.first.label,
            self.first.clock,
            self.second.thread,
            self.second.kind,
            self.second.label,
            self.second.clock,
        )

    @property
    def location_signature(self) -> tuple:
        """Schedule-independent identity (for deduplication across schedules).

        Threads and clock values vary with the interleaving; the pair of
        source labels, the access kinds, and the cell do not.
        """
        a = (self.first.kind, self.first.label)
        b = (self.second.kind, self.second.label)
        return (self.cell, *sorted([a, b]))

    def describe(self) -> str:
        return (
            f"data race on cell {self.cell!r}:\n"
            f"  earlier: {self.first.describe()}\n"
            f"  later:   {self.second.describe()}\n"
            f"  gap:     {self.gap}"
        )


class RaceError(RuntimeError):
    """Raised by :meth:`HBDetector.check` when races were recorded."""

    def __init__(self, races: tuple[RaceReport, ...]) -> None:
        super().__init__(
            f"{len(races)} data race(s) detected; first: {races[0].describe()}"
        )
        self.races = races


class _Shadow:
    """Per-cell shadow state: the last write plus all reads since it."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: MemoryAccess | None = None
        self.reads: dict[str, MemoryAccess] = {}


class HBDetector:
    """The race detector proper: clocks, lock clocks, and shadow memory.

    All mutators take an internal lock, so the detector is safe both
    under the cooperative scheduler (one runnable thread at a time) and
    in free-running *observe* mode where hooks fire concurrently. The
    lock is never held across a blocking operation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clocks: dict[str, VectorClock] = {MAIN_THREAD: VectorClock({MAIN_THREAD: 1})}
        self._lock_clocks: dict[Hashable, VectorClock] = {}
        self._cells: dict[str, _Shadow] = {}
        self._op_counts: dict[str, int] = {}
        self._races: list[RaceReport] = []
        self._seen: set[tuple] = set()

    # ------------------------------------------------------------------
    # clock plumbing
    # ------------------------------------------------------------------
    def _clock(self, thread: str) -> VectorClock:
        clock = self._clocks.get(thread)
        if clock is None:
            clock = VectorClock({thread: 1})
            self._clocks[thread] = clock
        return clock

    def clock_of(self, thread: str) -> tuple[tuple[str, int], ...]:
        """Snapshot of ``thread``'s vector clock (diagnostics/tests)."""
        with self._lock:
            return self._clock(thread).snapshot()

    def fork(self, parent: str, child: str) -> None:
        """Install the fork edge parent -> child (team/thread creation)."""
        with self._lock:
            parent_clock = self._clock(parent)
            child_clock = parent_clock.copy()
            child_clock.tick(child)
            self._clocks[child] = child_clock
            parent_clock.tick(parent)

    def join(self, parent: str, child: str) -> None:
        """Install the join edge child -> parent (thread join)."""
        with self._lock:
            parent_clock = self._clock(parent)
            parent_clock.merge(self._clock(child))
            parent_clock.tick(parent)

    def acquire(self, lock_key: Hashable, thread: str) -> None:
        """Acquire edge: the thread inherits the lock's release clock."""
        with self._lock:
            released = self._lock_clocks.get(lock_key)
            if released is not None:
                self._clock(thread).merge(released)

    def release(self, lock_key: Hashable, thread: str) -> None:
        """Release edge: the lock remembers the releasing thread's clock."""
        with self._lock:
            clock = self._clock(thread)
            stored = self._lock_clocks.get(lock_key)
            if stored is None:
                self._lock_clocks[lock_key] = clock.copy()
            else:
                stored.merge(clock)
            clock.tick(thread)

    def barrier_sync(self, threads: Iterable[str]) -> None:
        """Full barrier: everyone observes everyone (join of all clocks)."""
        with self._lock:
            names = list(threads)
            joined = VectorClock()
            for name in names:
                joined.merge(self._clock(name))
            for name in names:
                clock = joined.copy()
                clock.tick(name)
                self._clocks[name] = clock

    # ------------------------------------------------------------------
    # annotated accesses
    # ------------------------------------------------------------------
    def _access(self, thread: str, kind: str, label: str) -> MemoryAccess:
        count = self._op_counts.get(thread, 0)
        self._op_counts[thread] = count + 1
        return MemoryAccess(
            thread=thread,
            kind=kind,
            label=label,
            clock=self._clock(thread).get(thread),
            op_index=count,
        )

    def _report(self, cell: str, first: MemoryAccess, second: MemoryAccess) -> None:
        gap = (
            f"no happens-before edge orders them: {second.thread} has not observed "
            f"{first.thread}@{first.clock} (missing release/acquire, barrier, or "
            f"join between the accesses)"
        )
        report = RaceReport(cell=cell, first=first, second=second, gap=gap)
        if report.signature in self._seen:
            return
        self._seen.add(report.signature)
        self._races.append(report)
        self._emit_trace(report)

    @staticmethod
    def _emit_trace(report: RaceReport) -> None:
        # Local import: repro.trace must stay importable without the
        # sanitizer and vice versa.
        from repro.trace.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "sanitizer.race",
                category="sanitizer",
                cell=report.cell,
                first=f"{report.first.thread}:{report.first.kind}:{report.first.label}",
                second=f"{report.second.thread}:{report.second.kind}:{report.second.label}",
            )
            tracer.metrics.counter("sanitizer.races").inc()

    def read(self, cell: str, thread: str, label: str) -> None:
        """Record an annotated read; race iff an unordered write precedes it."""
        with self._lock:
            shadow = self._cells.setdefault(cell, _Shadow())
            clock = self._clock(thread)
            access = self._access(thread, "read", label)
            write = shadow.last_write
            if (
                write is not None
                and write.thread != thread
                and not clock.observes(write.thread, write.clock)
            ):
                self._report(cell, write, access)
            shadow.reads[thread] = access

    def write(self, cell: str, thread: str, label: str) -> None:
        """Record an annotated write; race iff any unordered access precedes it."""
        with self._lock:
            shadow = self._cells.setdefault(cell, _Shadow())
            clock = self._clock(thread)
            access = self._access(thread, "write", label)
            write = shadow.last_write
            if (
                write is not None
                and write.thread != thread
                and not clock.observes(write.thread, write.clock)
            ):
                self._report(cell, write, access)
            for read in shadow.reads.values():
                if read.thread != thread and not clock.observes(read.thread, read.clock):
                    self._report(cell, read, access)
            shadow.last_write = access
            shadow.reads = {}

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def races(self) -> tuple[RaceReport, ...]:
        """All distinct races recorded so far (detection order)."""
        with self._lock:
            return tuple(self._races)

    def check(self) -> None:
        """Raise :class:`RaceError` if any race was recorded."""
        races = self.races
        if races:
            raise RaceError(races)
