"""Deterministic race detection + schedule exploration for the shared-memory layers.

The k-means assignment (paper §3) teaches the race → critical → atomic
→ reduction repair ladder, but a race that only *sometimes* corrupts a
counter is a miserable teaching (and production) artifact. This package
turns "the GIL happened to interleave badly" into a tool with two
halves, the same shape as TSan over a deterministic-replay harness:

- :mod:`repro.sanitizer.hb` — a vector-clock **happens-before
  detector**: per-thread clocks, release/acquire edges fed by the
  instrumented ``Lock``/``Atomic``/``barrier``/``critical`` wrappers in
  :mod:`repro.openmp` and the ``thread`` executor backend, and per-cell
  shadow state that reports any conflicting, unordered access pair as a
  :class:`RaceReport` — whether or not this run corrupted anything.
- :mod:`repro.sanitizer.schedule` — a **cooperative schedule
  explorer**: instrumented teams are serialized onto interleavings
  chosen by seeded ``repro.rng.lcg`` streams (plus a bounded DFS mode),
  so :func:`explore` certifies a body over N schedules and any finding
  replays **bit-identically** from its ``(seed, schedule_id)``.

Everything is off by default: :func:`get_sanitizer` returns ``None`` on
the hot path (overhead gated <5% by
``benchmarks/test_sanitizer_overhead.py``), and races surface through
:mod:`repro.trace` instants plus the plain-text reports in
:mod:`repro.sanitizer.report`. See docs/sanitizer.md for the model, the
replay workflow, and how to read a report.
"""

from repro.sanitizer.hb import (
    HBDetector,
    MemoryAccess,
    RaceError,
    RaceReport,
    VectorClock,
)
from repro.sanitizer.report import (
    emit_trace_instants,
    format_outcome,
    format_race,
    format_result,
    write_report,
)
from repro.sanitizer.runtime import (
    GuardedSection,
    Sanitizer,
    annotate_read,
    annotate_write,
    get_sanitizer,
    preemption_point,
    set_sanitizer,
    use_sanitizer,
)
from repro.sanitizer.schedule import (
    CooperativeScheduler,
    ExplorationResult,
    PrefixChooser,
    RandomChooser,
    ScheduleDeadlockError,
    ScheduleOutcome,
    explore,
    explore_dfs,
    run_schedule,
    schedule_stream,
)

__all__ = [
    # detector
    "VectorClock",
    "MemoryAccess",
    "RaceReport",
    "RaceError",
    "HBDetector",
    # runtime gate + hooks
    "Sanitizer",
    "GuardedSection",
    "get_sanitizer",
    "set_sanitizer",
    "use_sanitizer",
    "annotate_read",
    "annotate_write",
    "preemption_point",
    # schedule exploration
    "CooperativeScheduler",
    "RandomChooser",
    "PrefixChooser",
    "ScheduleDeadlockError",
    "ScheduleOutcome",
    "ExplorationResult",
    "schedule_stream",
    "run_schedule",
    "explore",
    "explore_dfs",
    # reporting
    "format_race",
    "format_outcome",
    "format_result",
    "write_report",
    "emit_trace_instants",
]
