"""Rendering race findings: plain text reports and trace instants.

Races found by the detector surface in two places so they plug into the
repo's existing observability story (``docs/observability.md``):

- **live**, as ``sanitizer.race`` instants plus a ``sanitizer.races``
  counter on the active :mod:`repro.trace` tracer the moment the
  detector flags them (the detector does this itself), and
- **after the fact**, as the plain-text campaign report this module
  renders — one block per distinct race with both accesses, their
  vector-clock evidence, and the exact replay command.
"""

from __future__ import annotations

from pathlib import Path

from repro.sanitizer.hb import RaceReport
from repro.sanitizer.schedule import ExplorationResult, ScheduleOutcome

__all__ = [
    "format_race",
    "format_outcome",
    "format_result",
    "write_report",
    "emit_trace_instants",
]


def format_race(race: RaceReport, *, index: int | None = None) -> str:
    """One race as a readable block (see docs/sanitizer.md for the anatomy)."""
    header = f"RACE #{index}" if index is not None else "RACE"
    return "\n".join(
        [
            f"{header} on cell {race.cell!r}",
            f"  earlier access : {race.first.describe()}",
            f"  later access   : {race.second.describe()}",
            f"  missing order  : {race.gap}",
        ]
    )


def _replay_hint(outcome: ScheduleOutcome) -> str:
    if outcome.mode == "random":
        return (
            f"replay: repro.sanitizer.run_schedule(body, seed={outcome.seed}, "
            f"schedule_id={outcome.schedule_id})"
        )
    return f"replay: PrefixChooser(prefix={outcome.choices!r}) (dfs schedule {outcome.schedule_id})"


def format_outcome(outcome: ScheduleOutcome) -> str:
    """One schedule's findings, with its replay coordinates."""
    lines = [
        f"schedule {outcome.schedule_id} ({outcome.mode}"
        + (f", seed={outcome.seed}" if outcome.seed is not None else "")
        + f"): {outcome.steps} decisions, {len(outcome.races)} race(s)",
        f"  {_replay_hint(outcome)}",
    ]
    for i, race in enumerate(outcome.races):
        lines.append("")
        lines.extend("  " + line for line in format_race(race, index=i).splitlines())
    return "\n".join(lines)


def format_result(result: ExplorationResult, *, title: str = "schedule exploration") -> str:
    """The campaign report: verdict, coverage, then every distinct race."""
    races = result.races
    racy = result.racy_schedules()
    verdict = (
        "NO RACES DETECTED"
        if not races
        else f"{len(races)} DISTINCT RACE(S) on {len(racy)}/{result.schedules_run} schedules"
    )
    lines = [
        f"=== sanitizer report: {title} ===",
        f"mode={result.mode}"
        + (f" seed={result.seed}" if result.seed is not None else "")
        + f" schedules={result.schedules_run}"
        + f" distinct_interleavings={result.distinct_interleavings()}",
        f"verdict: {verdict}",
    ]
    for i, race in enumerate(races):
        lines.append("")
        lines.append(format_race(race, index=i))
    if racy:
        lines.append("")
        lines.append("racy schedules (replay any of them):")
        lines.extend(f"  {_replay_hint(outcome)}" for outcome in racy)
    return "\n".join(lines) + "\n"


def write_report(result: ExplorationResult, path: str | Path, *, title: str | None = None) -> Path:
    """Render :func:`format_result` to ``path`` (parents created); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_result(result, title=title or path.stem))
    return path


def emit_trace_instants(result: ExplorationResult, tracer=None) -> int:
    """Re-emit a campaign's distinct races as ``sanitizer.race`` instants.

    The detector already emits instants live when a tracer is enabled
    *during* the run; this lets a caller surface the aggregated findings
    on a different tracer (e.g. the CI run's). Returns how many fired.
    """
    from repro.trace.tracer import get_tracer

    tracer = tracer or get_tracer()
    if not tracer.enabled:
        return 0
    races = result.races
    for race in races:
        tracer.instant(
            "sanitizer.race",
            category="sanitizer",
            cell=race.cell,
            first=f"{race.first.thread}:{race.first.kind}:{race.first.label}",
            second=f"{race.second.thread}:{race.second.kind}:{race.second.label}",
        )
    if races:
        tracer.metrics.counter("sanitizer.reported_races").inc(len(races))
    return len(races)
