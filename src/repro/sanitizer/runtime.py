"""The sanitizer gate and the hook surface the instrumented layers call.

Everything in this module is built around one invariant: **the disabled
path must stay free**. :func:`get_sanitizer` returns ``None`` unless a
:class:`Sanitizer` has been installed (normally by
:func:`repro.sanitizer.schedule.explore` or :func:`use_sanitizer`), so
every instrumentation site in :mod:`repro.openmp`,
:mod:`repro.core.executor`, and the workloads is one module-global read
plus a ``None`` test — the same discipline as the disabled tracer and
the no-op fault plans, gated under 5% by
``benchmarks/test_sanitizer_overhead.py``.

A :class:`Sanitizer` bundles the two halves of the tool:

- the :class:`~repro.sanitizer.hb.HBDetector` (always on), and
- an optional :class:`~repro.sanitizer.schedule.CooperativeScheduler`.

With a scheduler (**explore** mode) instrumented thread teams are
serialized onto the chooser's deterministic interleaving; without one
(**observe** mode) threads run free on the OS schedule and only the
happens-before bookkeeping runs — cheap enough to leave on while
benchmarking, and still able to flag races the interleaving never
expressed.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator

from repro.sanitizer.hb import MAIN_THREAD, HBDetector, RaceReport
from repro.sanitizer.schedule import CooperativeScheduler

__all__ = [
    "Sanitizer",
    "GuardedSection",
    "get_sanitizer",
    "set_sanitizer",
    "use_sanitizer",
    "annotate_read",
    "annotate_write",
    "preemption_point",
]


class _SanTeam:
    """Bookkeeping for one instrumented thread team (region or executor map)."""

    __slots__ = ("name", "tids", "parent", "scheduled", "barrier_state")

    def __init__(self, name: str, tids: list[str], parent: str, scheduled: bool) -> None:
        self.name = name
        self.tids = tids
        self.parent = parent
        self.scheduled = scheduled
        #: Cooperative-barrier generation/arrival tracking (explore mode).
        self.barrier_state: dict[str, Any] = {"gen": 0, "arrived": set()}


class GuardedSection:
    """An instrumented critical section (what ``ctx.critical`` returns when active).

    In explore mode the underlying OS lock is never touched: mutual
    exclusion is enforced by the cooperative scheduler (the acquiring
    thread blocks until the section is free), so a thread preempted
    *inside* the section can never wedge the real lock against the one
    thread allowed to run. In observe mode the real lock is taken and
    only the release/acquire clock edges are added.
    """

    __slots__ = ("_sanitizer", "_key", "_real")

    def __init__(self, sanitizer: "Sanitizer", key: Hashable, real_lock: Any) -> None:
        self._sanitizer = sanitizer
        self._key = key
        self._real = real_lock

    def __enter__(self) -> "GuardedSection":
        self._sanitizer.lock_acquire(self._key, self._real)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._sanitizer.lock_release(self._key, self._real)


class Sanitizer:
    """One race-detection run: detector + (optionally) the schedule driver.

    Install with :func:`use_sanitizer`; the instrumented layers find it
    through :func:`get_sanitizer`. One sanitizer observes one body
    execution — create a fresh one per explored schedule (which
    :func:`repro.sanitizer.schedule.explore` does for you).
    """

    def __init__(self, *, chooser: Callable[[int, int], int] | None = None) -> None:
        self.detector = HBDetector()
        self.scheduler = CooperativeScheduler(chooser) if chooser is not None else None
        self._local = threading.local()
        self._team_counter = itertools.count()
        self._registry_guard = threading.Lock()
        self._cell_names: dict[int, str] = {}
        self._cell_refs: list[Any] = []
        self._hint_counts: dict[str, int] = {}
        self._lock_owners: dict[Hashable, list] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def exploring(self) -> bool:
        """True when a cooperative scheduler drives the interleaving."""
        return self.scheduler is not None

    @property
    def races(self) -> tuple[RaceReport, ...]:
        return self.detector.races

    @property
    def scheduler_trace(self) -> tuple[tuple[int, int], ...]:
        """The ``(num_enabled, choice)`` decision trace (explore mode)."""
        return tuple(self.scheduler.trace) if self.scheduler is not None else ()

    def current_thread(self) -> str:
        """The calling thread's logical name (``"main"`` if unregistered)."""
        return getattr(self._local, "tid", None) or MAIN_THREAD

    def _is_scheduled(self) -> bool:
        return getattr(self._local, "scheduled", False)

    def cell_name(self, obj: Any, hint: str) -> str:
        """A stable cell name for ``obj`` within this sanitizer's run.

        Names are assigned in first-sighting order (``hint#0``,
        ``hint#1``, …) and the object is pinned for the sanitizer's
        lifetime so a recycled ``id()`` can never alias two cells.
        """
        with self._registry_guard:
            key = id(obj)
            name = self._cell_names.get(key)
            if name is None:
                count = self._hint_counts.get(hint, 0)
                self._hint_counts[hint] = count + 1
                name = f"{hint}#{count}"
                self._cell_names[key] = name
                self._cell_refs.append(obj)
            return name

    # ------------------------------------------------------------------
    # team lifecycle (called by parallel_region / ThreadExecutor)
    # ------------------------------------------------------------------
    def team_begin(self, num_threads: int, kind: str = "omp") -> _SanTeam:
        """Fork a logical team; returns the token the other hooks take.

        Teams forked from the driver thread in explore mode are
        cooperatively scheduled; teams forked from inside another team
        (nested regions) get happens-before edges only.
        """
        index = next(self._team_counter)
        name = f"{kind}{index}"
        parent = self.current_thread()
        tids = [f"{name}:t{i}" for i in range(num_threads)]
        scheduled = self.scheduler is not None and not self._is_scheduled() and parent == MAIN_THREAD
        for tid in tids:
            self.detector.fork(parent, tid)
        team = _SanTeam(name, tids, parent, scheduled)
        if scheduled:
            self.scheduler.add_team(tids)
        return team

    def thread_begin(self, team: _SanTeam, index: int) -> None:
        tid = team.tids[index]
        self._local.tid = tid
        self._local.scheduled = team.scheduled
        if team.scheduled:
            self.scheduler.thread_begin(tid)

    def thread_end(self, team: _SanTeam, index: int) -> None:
        try:
            if team.scheduled:
                self.scheduler.thread_end(team.tids[index])
        finally:
            self._local.tid = None
            self._local.scheduled = False

    def team_end(self, team: _SanTeam) -> None:
        """Join the team back into its parent (call after the real joins)."""
        for tid in team.tids:
            self.detector.join(team.parent, tid)
        if team.scheduled:
            self.scheduler.remove_team(team.tids)

    # ------------------------------------------------------------------
    # preemption + memory hooks
    # ------------------------------------------------------------------
    def yield_point(self) -> None:
        """Offer the scheduler a preemption opportunity (no-op unscheduled)."""
        if self._is_scheduled():
            self.scheduler.yield_point(self._local.tid)

    def mem_read(self, cell: str, label: str) -> None:
        """Annotated shared read: a preemption point plus an HB check."""
        tid = self.current_thread()
        if self._is_scheduled():
            self.scheduler.yield_point(tid)
        self.detector.read(str(cell), tid, label)

    def mem_write(self, cell: str, label: str) -> None:
        """Annotated shared write: a preemption point plus an HB check."""
        tid = self.current_thread()
        if self._is_scheduled():
            self.scheduler.yield_point(tid)
        self.detector.write(str(cell), tid, label)

    # ------------------------------------------------------------------
    # synchronization hooks
    # ------------------------------------------------------------------
    def guard(self, key: Hashable, real_lock: Any) -> GuardedSection:
        """The instrumented section for one lock identity."""
        return GuardedSection(self, key, real_lock)

    def lock_acquire(self, key: Hashable, real_lock: Any) -> None:
        tid = self.current_thread()
        if self._is_scheduled():
            owners = self._lock_owners

            def section_free() -> bool:
                owner = owners.get(key)
                return owner is None or owner[0] == tid

            self.scheduler.block_until(tid, section_free)
            owner = owners.get(key)
            if owner is not None and owner[0] == tid:
                owner[1] += 1  # reentrant re-acquire
            else:
                owners[key] = [tid, 1]
            self.detector.acquire(key, tid)
        else:
            real_lock.acquire()
            self.detector.acquire(key, tid)

    def lock_release(self, key: Hashable, real_lock: Any) -> None:
        tid = self.current_thread()
        self.detector.release(key, tid)
        if self._is_scheduled():
            owner = self._lock_owners.get(key)
            if owner is not None and owner[0] == tid:
                owner[1] -= 1
                if owner[1] == 0:
                    del self._lock_owners[key]
            self.scheduler.yield_point(tid)
        else:
            real_lock.release()

    def barrier_wait(self, team: _SanTeam, index: int, real_barrier: Any) -> None:
        """Team barrier: full clock sync, cooperative or two-phase real."""
        tid = team.tids[index]
        if team.scheduled:
            state = team.barrier_state
            generation = state["gen"]
            state["arrived"].add(tid)
            if len(state["arrived"]) == len(team.tids):
                self.detector.barrier_sync(team.tids)
                state["arrived"] = set()
                state["gen"] += 1
                self.scheduler.yield_point(tid)
            else:
                self.scheduler.block_until(tid, lambda: state["gen"] > generation)
        else:
            # Phase 1: everyone arrives; one thread merges the clocks;
            # phase 2 keeps anyone from racing ahead of the merge.
            if real_barrier.wait() == 0:
                self.detector.barrier_sync(team.tids)
            real_barrier.wait()


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------

_ACTIVE: Sanitizer | None = None


def get_sanitizer() -> Sanitizer | None:
    """The installed sanitizer, or ``None`` (the free hot-path default)."""
    return _ACTIVE


def set_sanitizer(sanitizer: Sanitizer | None) -> Sanitizer | None:
    """Install ``sanitizer`` process-wide; returns the previous one.

    Install/uninstall from the driver thread only, outside any
    instrumented region — flipping the gate mid-region would hand a
    team half-instrumented locks.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sanitizer
    return previous


@contextmanager
def use_sanitizer(sanitizer: Sanitizer) -> Iterator[Sanitizer]:
    """Scoped :func:`set_sanitizer`: install for the block, restore after.

    >>> from repro.sanitizer import Sanitizer, use_sanitizer
    >>> with use_sanitizer(Sanitizer()) as san:
    ...     pass  # instrumented code here feeds san.detector
    >>> san.races
    ()
    """
    previous = set_sanitizer(sanitizer)
    try:
        yield sanitizer
    finally:
        set_sanitizer(previous)


def annotate_read(cell: str, label: str = "annotated-read") -> None:
    """Declare a shared-memory read at the call site (no-op when disabled)."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.mem_read(cell, label)


def annotate_write(cell: str, label: str = "annotated-write") -> None:
    """Declare a shared-memory write at the call site (no-op when disabled)."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.mem_write(cell, label)


def preemption_point() -> None:
    """Offer the schedule explorer a context-switch opportunity (no-op when disabled)."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.yield_point()
